#include "sim/multi_core_system.hh"

#include <algorithm>
#include <cmath>

#include "cpu/functional_core.hh"
#include "cpu/inorder_core.hh"
#include "cpu/ooo_core.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/timeline.hh"
#include "workload/synthetic.hh"
#include "workload/workload_factory.hh"

namespace rcache
{

namespace
{

/**
 * A core's private view of its workload: the generated stream with
 * every address shifted into the core's own high-address window, so
 * concurrent programs never alias in the shared L2. The offset leaves
 * all index/tag-low bits untouched — each stream's L1 and alias-set
 * behavior is bit-identical to the unshifted stream.
 */
class AddressSpaceWorkload final : public Workload
{
  public:
    AddressSpaceWorkload(const BenchmarkProfile &profile, Addr base)
        : inner_(makeWorkload(profile)), base_(base)
    {
    }

    MicroInst
    next() override
    {
        MicroInst inst = inner_->next();
        relocate(inst);
        return inst;
    }

    void
    nextBatch(MicroInst *buf, std::size_t n) override
    {
        inner_->nextBatch(buf, n);
        for (std::size_t k = 0; k < n; ++k)
            relocate(buf[k]);
    }

    void reset() override { inner_->reset(); }
    void skip(std::uint64_t n) override { inner_->skip(n); }
    std::string name() const override { return inner_->name(); }

  private:
    void
    relocate(MicroInst &inst) const
    {
        inst.pc += base_;
        inst.effAddr += base_;
        inst.target += base_;
    }

    std::unique_ptr<Workload> inner_;
    Addr base_;
};

/** Everything one core owns privately. */
struct CoreLane
{
    CoreLane(const SystemConfig &cfg, unsigned id, SharedL2 &l2,
             const BenchmarkProfile &profile)
        : workload(profile, MultiCoreSystem::addressSpaceBase(id)),
          il1("il1", cfg.il1, cfg.il1Org, cfg.policy, id),
          dl1("dl1", cfg.dl1, cfg.dl1Org, cfg.policy, id),
          hier(&il1.cache(), &dl1.cache(), l2, id, cfg.lat)
    {
    }

    AddressSpaceWorkload workload;
    ResizableCache il1;
    ResizableCache dl1;
    Hierarchy hier;
    std::unique_ptr<ResizePolicy> il1Policy;
    std::unique_ptr<ResizePolicy> dl1Policy;
    std::unique_ptr<Core> core;
    std::unique_ptr<FunctionalCore> func;

    std::uint64_t remaining = 0;

    /** @name Accumulators across quanta / sampling periods */
    /// @{
    CoreActivity activity;
    std::uint64_t cycles = 0;
    CacheActivity il1Act, dl1Act;
    double l2Accesses = 0, l2Misses = 0, memAccesses = 0;
    std::uint64_t measured = 0, warmed = 0, fastForwarded = 0;
    /// @}
};

/** The mirror of System::makePolicy for one lane's cache. */
std::unique_ptr<ResizePolicy>
makeLanePolicy(ResizableCache &cache, Hierarchy &hier,
               const ResizeSetup &setup)
{
    switch (setup.strategy) {
      case Strategy::None:
        return nullptr;
      case Strategy::Static:
        rc_assert(cache.organization() != Organization::None ||
                  setup.staticLevel == 0);
        return std::make_unique<StaticPolicy>(
            cache, hier.l1WritebackSink(), setup.staticLevel);
      case Strategy::Dynamic:
        rc_assert(cache.organization() != Organization::None);
        return std::make_unique<DynamicMissRatioController>(
            cache, hier.l1WritebackSink(), setup.dyn);
    }
    rc_panic("bad strategy");
}

void
accumulate(CoreActivity &sum, const CoreActivity &act)
{
    sum.outOfOrder = act.outOfOrder;
    sum.insts += act.insts;
    sum.intOps += act.intOps;
    sum.fpOps += act.fpOps;
    sum.loads += act.loads;
    sum.stores += act.stores;
    sum.branches += act.branches;
    sum.mispredicts += act.mispredicts;
}

std::uint64_t
scaleCount(std::uint64_t v, double scale)
{
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(v) * scale));
}

} // namespace

MultiCoreSystem::MultiCoreSystem(const SystemConfig &cfg)
    : cfg_(cfg), l2_(cfg.l2, cfg.cores)
{
    rc_assert(cfg_.cores >= 2);
    rc_assert(cfg_.quantumInsts > 0);
}

MultiCoreResult
MultiCoreSystem::run(const std::vector<BenchmarkProfile> &mix,
                     std::uint64_t insts_per_core,
                     const ResizeSetup &il1_setup,
                     const ResizeSetup &dl1_setup,
                     const EngineSpec &engine,
                     RunTelemetry *telemetry)
{
    rc_assert(!ran_);
    ran_ = true;
    rc_assert(!mix.empty());
    rc_assert(insts_per_core > 0);
    engine.validate();
    if (engine.analytic())
        rc_fatal("the analytic engine supports single-core runs only");

    // ---- build the lanes
    std::vector<std::unique_ptr<CoreLane>> lanes;
    lanes.reserve(cfg_.cores);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        auto lane = std::make_unique<CoreLane>(
            cfg_, c, l2_, mix[c % mix.size()]);
        lane->il1Policy =
            makeLanePolicy(lane->il1, lane->hier, il1_setup);
        lane->dl1Policy =
            makeLanePolicy(lane->dl1, lane->hier, dl1_setup);
        if (cfg_.modelOfCore(c) == CoreModel::OutOfOrder) {
            lane->core = std::make_unique<OooCore>(
                cfg_.core, lane->hier, lane->il1Policy.get(),
                lane->dl1Policy.get());
        } else {
            lane->core = std::make_unique<InOrderCore>(
                cfg_.core, lane->hier, lane->il1Policy.get(),
                lane->dl1Policy.get());
        }
        if (engine.sampled()) {
            lane->func = std::make_unique<FunctionalCore>(
                lane->hier, lane->core->predictor(),
                cfg_.core.fetchWidth, lane->il1Policy.get(),
                lane->dl1Policy.get());
        }
        lane->remaining = insts_per_core;
        lanes.push_back(std::move(lane));
    }

    // ---- telemetry: per-lane resize-event sinks and timeline
    // recorders. Recorders live outside the loop and outlast every
    // quantum; rows are harvested in core order at the end.
    std::vector<std::unique_ptr<TimelineRecorder>> recorders;
    if (telemetry) {
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            CoreLane &lane = *lanes[c];
            if (telemetry->resizeEvents) {
                const ResizeTelemetry sink{&telemetry->events, c,
                                           cfg_.core.wbDrainLatency};
                if (auto *dyn =
                        dynamic_cast<DynamicMissRatioController *>(
                            lane.il1Policy.get()))
                    dyn->setTelemetry(sink);
                if (auto *dyn =
                        dynamic_cast<DynamicMissRatioController *>(
                            lane.dl1Policy.get()))
                    dyn->setTelemetry(sink);
            }
            if (telemetry->wantsTimeline()) {
                TimelineSources src;
                src.core = c;
                src.il1 = &lane.il1.cache();
                src.dl1 = &lane.dl1.cache();
                src.il1ExtraTagBits = lane.il1.extraTagBits();
                src.dl1ExtraTagBits = lane.dl1.extraTagBits();
                src.l2Accesses = [this, c] {
                    return l2_.coreStats(c).accesses;
                };
                src.l2Misses = [this, c] {
                    return l2_.coreStats(c).misses;
                };
                src.memAccesses = [&lane] {
                    return lane.hier.memReads() +
                           lane.hier.memWrites();
                };
                src.l2SizeBytes = l2_.cache().geometry().size;
                src.timingCore = lane.core.get();
                src.energy = &cfg_.energy;
                recorders.push_back(std::make_unique<TimelineRecorder>(
                    src, telemetry->timelineInterval));
                lane.core->setProbe(recorders.back().get());
                if (lane.func)
                    lane.func->setProbe(recorders.back().get());
            }
        }
    }

    // ---- advance in deterministic round-robin turns. Full-detail
    // turns run one quantum; sampled turns run one whole sampling
    // period (skip / warm / measure), so the shared-L2 interleave is
    // a pure function of the configuration in both modes.
    bool work_left = true;
    while (work_left) {
        work_left = false;
        for (auto &lane_ptr : lanes) {
            CoreLane &lane = *lane_ptr;
            if (lane.remaining == 0)
                continue;

            std::uint64_t detail;
            if (engine.sampled()) {
                const SamplingConfig::PeriodShape shape =
                    engine.sampling.periodShape(lane.remaining);
                if (shape.fastForward)
                    lane.workload.skip(shape.fastForward);
                if (shape.warmup) {
                    lane.func->invalidateFetchBlock();
                    lane.func->run(lane.workload, shape.warmup);
                }
                lane.fastForwarded += shape.fastForward;
                lane.warmed += shape.warmup;
                lane.remaining -=
                    shape.fastForward + shape.warmup + shape.detailed;
                detail = shape.detailed;
            } else {
                detail = std::min<std::uint64_t>(cfg_.quantumInsts,
                                                 lane.remaining);
                lane.remaining -= detail;
            }
            lane.measured += detail;
            work_left = work_left || lane.remaining != 0;

            // A fresh timing window per turn, exactly like the
            // sampling engine's detailed windows: cycle 0, empty
            // structural pools, byte-cycle integrals re-anchored;
            // warm cache/predictor/controller state carries over.
            lane.core->resetTiming();
            lane.il1.cache().restartTimeAccounting();
            lane.dl1.cache().restartTimeAccounting();

            const CacheActivity il1_pre =
                CacheActivity::of(lane.il1.cache());
            const CacheActivity dl1_pre =
                CacheActivity::of(lane.dl1.cache());
            const SharedL2CoreStats &l2s =
                l2_.coreStats(lane.hier.coreId());
            const std::uint64_t l2a_pre = l2s.accesses;
            const std::uint64_t l2m_pre = l2s.misses;
            const std::uint64_t mem_pre =
                lane.hier.memReads() + lane.hier.memWrites();

            const CoreActivity act =
                lane.core->run(lane.workload, detail);
            lane.il1.cache().accumulateEnabledTime(act.cycles);
            lane.dl1.cache().accumulateEnabledTime(act.cycles);

            lane.il1Act +=
                CacheActivity::of(lane.il1.cache()) - il1_pre;
            lane.dl1Act +=
                CacheActivity::of(lane.dl1.cache()) - dl1_pre;
            lane.l2Accesses +=
                static_cast<double>(l2s.accesses - l2a_pre);
            lane.l2Misses +=
                static_cast<double>(l2s.misses - l2m_pre);
            lane.memAccesses += static_cast<double>(
                lane.hier.memReads() + lane.hier.memWrites() -
                mem_pre);
            lane.cycles += act.cycles;
            accumulate(lane.activity, act);
        }
    }

    // ---- per-core results
    MultiCoreResult out;
    out.perCore.reserve(lanes.size());
    const ProcessorEnergyModel energy(cfg_.energy);
    for (auto &lane_ptr : lanes) {
        CoreLane &lane = *lane_ptr;
        RunResult r;
        r.workload = lane.workload.name();
        r.engine = engine.mode;
        r.measuredInsts = lane.measured;
        r.warmupInsts = lane.warmed;

        // Extrapolate sampled lanes to the full per-core stream; a
        // full-detail lane's scale is exactly 1.
        rc_assert(lane.measured > 0);
        const double scale = static_cast<double>(insts_per_core) /
                             static_cast<double>(lane.measured);
        r.activity.outOfOrder = lane.activity.outOfOrder;
        r.activity.insts = insts_per_core;
        r.activity.cycles = scaleCount(lane.cycles, scale);
        r.activity.intOps = scaleCount(lane.activity.intOps, scale);
        r.activity.fpOps = scaleCount(lane.activity.fpOps, scale);
        r.activity.loads = scaleCount(lane.activity.loads, scale);
        r.activity.stores = scaleCount(lane.activity.stores, scale);
        r.activity.branches =
            scaleCount(lane.activity.branches, scale);
        r.activity.mispredicts =
            scaleCount(lane.activity.mispredicts, scale);
        r.insts = r.activity.insts;
        r.cycles = r.activity.cycles;

        // Energy is priced from the core's attributed activity: its
        // private L1 events plus its share of the shared L2/memory
        // traffic; the shared L2's size-proportional term is charged
        // over this core's cycles (see the header's convention).
        r.energy = energy.compute(
            r.activity, lane.il1Act.scaled(scale),
            lane.il1.extraTagBits(), lane.dl1Act.scaled(scale),
            lane.dl1.extraTagBits(), lane.l2Accesses * scale,
            l2_.cache().geometry().size, lane.memAccesses * scale);

        const double cyc = static_cast<double>(lane.cycles);
        r.avgIl1Bytes = cyc > 0 ? lane.il1Act.byteCycles / cyc : 0;
        r.avgDl1Bytes = cyc > 0 ? lane.dl1Act.byteCycles / cyc : 0;
        r.il1MissRatio = lane.il1Act.missRatio();
        r.dl1MissRatio = lane.dl1Act.missRatio();
        r.il1Accesses = scaleCount(
            static_cast<std::uint64_t>(lane.il1Act.accesses), scale);
        r.il1Misses = scaleCount(
            static_cast<std::uint64_t>(lane.il1Act.misses), scale);
        r.dl1Accesses = scaleCount(
            static_cast<std::uint64_t>(lane.dl1Act.accesses), scale);
        r.dl1Misses = scaleCount(
            static_cast<std::uint64_t>(lane.dl1Act.misses), scale);
        r.l2MissRatio = lane.l2Accesses > 0
                            ? lane.l2Misses / lane.l2Accesses
                            : 0;
        r.il1Resizes = lane.il1.cache().resizes();
        r.dl1Resizes = lane.dl1.cache().resizes();
        if (auto *dyn = dynamic_cast<DynamicMissRatioController *>(
                lane.il1Policy.get()))
            r.il1LevelTrace = dyn->levelTrace();
        if (auto *dyn = dynamic_cast<DynamicMissRatioController *>(
                lane.dl1Policy.get()))
            r.dl1LevelTrace = dyn->levelTrace();
        out.perCore.push_back(std::move(r));
    }

    // ---- shared-L2 attribution
    out.l2PerCore.reserve(cfg_.cores);
    for (unsigned c = 0; c < cfg_.cores; ++c)
        out.l2PerCore.push_back(l2_.coreStats(c));
    out.l2Totals = l2_.totals();

    // ---- the aggregate the sweep machinery reduces on
    RunResult &agg = out.aggregate;
    {
        std::string name;
        for (std::size_t i = 0; i < mix.size(); ++i)
            name += (i ? "+" : "") + mix[i].name;
        agg.workload = std::move(name);
    }
    agg.engine = engine.mode;
    double total_l2_accesses = 0;
    for (const RunResult &r : out.perCore) {
        agg.insts += r.insts;
        agg.il1Accesses += r.il1Accesses;
        agg.il1Misses += r.il1Misses;
        agg.dl1Accesses += r.dl1Accesses;
        agg.dl1Misses += r.dl1Misses;
        agg.cycles = std::max(agg.cycles, r.cycles);
        accumulate(agg.activity, r.activity);
        agg.activity.cycles =
            std::max(agg.activity.cycles, r.activity.cycles);
        agg.energy.icache += r.energy.icache;
        agg.energy.dcache += r.energy.dcache;
        agg.energy.memory += r.energy.memory;
        agg.energy.core += r.energy.core;
        agg.energy.clock += r.energy.clock;
        agg.avgIl1Bytes += r.avgIl1Bytes;
        agg.avgDl1Bytes += r.avgDl1Bytes;
        agg.il1Resizes += r.il1Resizes;
        agg.dl1Resizes += r.dl1Resizes;
        agg.measuredInsts += r.measuredInsts;
        agg.warmupInsts += r.warmupInsts;
    }
    agg.activity.insts = agg.insts;
    // The shared L2 is one physical structure: charge its switching
    // for the total attributed traffic and its size-proportional term
    // once, over the makespan.
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        const double scale =
            static_cast<double>(insts_per_core) /
            static_cast<double>(lanes[c]->measured);
        total_l2_accesses += lanes[c]->l2Accesses * scale;
    }
    const CacheEnergyModel cache_energy(cfg_.energy);
    agg.energy.l2 = cache_energy.l2Energy(
        total_l2_accesses, l2_.cache().geometry().size,
        static_cast<double>(agg.cycles));
    {
        double l1i_m = 0, l1i_a = 0, l1d_m = 0, l1d_a = 0;
        for (auto &lane_ptr : lanes) {
            l1i_m += lane_ptr->il1Act.misses;
            l1i_a += lane_ptr->il1Act.accesses;
            l1d_m += lane_ptr->dl1Act.misses;
            l1d_a += lane_ptr->dl1Act.accesses;
        }
        agg.il1MissRatio = l1i_a > 0 ? l1i_m / l1i_a : 0;
        agg.dl1MissRatio = l1d_a > 0 ? l1d_m / l1d_a : 0;
    }
    agg.l2MissRatio =
        out.l2Totals.accesses > 0
            ? static_cast<double>(out.l2Totals.misses) /
                  static_cast<double>(out.l2Totals.accesses)
            : 0;

    // ---- harvest timelines, core order
    for (auto &rec : recorders) {
        auto rows = rec->takeRows();
        telemetry->timeline.insert(telemetry->timeline.end(),
                                   rows.begin(), rows.end());
    }
    return out;
}

} // namespace rcache
