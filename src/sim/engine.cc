#include "sim/engine.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace rcache
{

std::string
engineName(EngineMode mode)
{
    switch (mode) {
      case EngineMode::Full:
        return "full";
      case EngineMode::Sampled:
        return "sampled";
      case EngineMode::Analytic:
        return "analytic";
    }
    rc_panic("bad EngineMode");
}

std::optional<EngineMode>
parseEngineModeToken(const std::string &t)
{
    if (t == "full")
        return EngineMode::Full;
    if (t == "sampled")
        return EngineMode::Sampled;
    if (t == "analytic")
        return EngineMode::Analytic;
    return std::nullopt;
}

void
EngineSpec::validate() const
{
    if (sampled()) {
        sampling.validate();
        return;
    }
    // Canonical-form invariant (see header): non-sampled specs carry
    // the default shape, so equality and printing stay meaningful.
    if (!(sampling == SamplingConfig{}))
        rc_fatal("engine '" + engineName(mode) +
                 "' carries a sampling shape; only the sampled "
                 "engine takes one");
}

namespace
{

/** Parse a positive uint64 option value; false on junk. */
bool
parseCount(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

} // namespace

std::optional<EngineSpec>
parseEngineArg(const std::string &text, std::string *err)
{
    const std::size_t colon = text.find(':');
    const std::string head = text.substr(0, colon);
    const std::optional<EngineMode> mode = parseEngineModeToken(head);
    if (!mode) {
        if (err)
            *err = "unknown engine '" + head +
                   "' (expected full, sampled, or analytic)";
        return std::nullopt;
    }
    if (colon == std::string::npos) {
        if (*mode != EngineMode::Sampled)
            return EngineSpec{*mode, {}};
        return EngineSpec::makeSampled(SamplingConfig{});
    }
    if (*mode != EngineMode::Sampled) {
        if (err)
            *err = "engine '" + head + "' takes no options";
        return std::nullopt;
    }

    std::optional<std::uint64_t> interval, detail, warmup;
    std::string rest = text.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string item = rest.substr(0, comma);
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (err)
                *err = "bad engine option '" + item +
                       "' (expected key=value)";
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        std::optional<std::uint64_t> *slot = nullptr;
        if (key == "interval")
            slot = &interval;
        else if (key == "detail")
            slot = &detail;
        else if (key == "warmup")
            slot = &warmup;
        if (!slot) {
            if (err)
                *err = "unknown engine option '" + key +
                       "' (expected interval, detail, or warmup)";
            return std::nullopt;
        }
        if (slot->has_value()) {
            if (err)
                *err = "duplicate engine option '" + key + "'";
            return std::nullopt;
        }
        std::uint64_t v = 0;
        if (!parseCount(val, &v)) {
            if (err)
                *err = "bad value for engine option '" + key + "': '" +
                       val + "'";
            return std::nullopt;
        }
        *slot = v;
    }

    SamplingConfig shape; // defaults when no options given
    if (interval) {
        if (*interval == 0) {
            if (err)
                *err = "engine option 'interval' must be > 0 "
                       "(use --engine full for unsampled runs)";
            return std::nullopt;
        }
        shape = SamplingConfig::sampled(
            *interval,
            detail.value_or(SamplingConfig::defaultDetail(*interval)),
            warmup.value_or(SamplingConfig::defaultWarmup(*interval)));
    } else if (detail || warmup) {
        if (err)
            *err = "engine options detail/warmup need interval=N";
        return std::nullopt;
    }
    if (const char *shape_err = SamplingConfig::shapeError(
            shape.intervalInsts, shape.detailedInsts,
            shape.warmupInsts)) {
        if (err)
            *err = shape_err;
        return std::nullopt;
    }
    return EngineSpec::makeSampled(shape);
}

std::string
engineArg(const EngineSpec &spec)
{
    if (!spec.sampled())
        return engineName(spec.mode);
    return "sampled:interval=" +
           std::to_string(spec.sampling.intervalInsts) +
           ",detail=" + std::to_string(spec.sampling.detailedInsts) +
           ",warmup=" + std::to_string(spec.sampling.warmupInsts);
}

} // namespace rcache
