#include "sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace rcache
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    rc_assert(!headers_.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rc_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total - 2, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

std::string
TextTable::pct(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v << '%';
    return ss.str();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
TextTable::bytesKb(double bytes)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(1) << bytes / 1024.0 << 'K';
    return ss.str();
}

} // namespace rcache
