/**
 * @file
 * Experiment driver: the paper's offline profiling methodology.
 *
 * Static resizing requires "profiling an application's execution with
 * different static cache sizes to determine the cache size with
 * minimal energy dissipation"; the dynamic controller's miss-bound and
 * size-bound "are extracted offline through profiling". staticSearch/
 * dynamicSearch implement exactly those sweeps and return the
 * minimum-energy-delay point together with the non-resizable baseline
 * it is normalized against.
 *
 * Every search decomposes into independent RunJobs (runner/
 * sweep_runner.hh): enumerate the design points, execute the batch,
 * reduce to the minimum-E.D point. Attach a SweepRunner with
 * setRunner() to execute batches on its thread pool; without one the
 * batch runs inline on the calling thread. Reductions scan results in
 * job order and keep the first minimum, so the outcome is identical
 * either way.
 *
 * Tie-break contract: reductions use a strict `<` comparison, so when
 * two candidates dissipate exactly equal energy-delay the FIRST one
 * in job order wins. Candidate grids are enumerated largest cache
 * first (offered-size schedules are sorted by decreasing size), so
 * ties resolve deterministically to the larger cache / lower
 * candidate index, independent of thread count or platform.
 */

#ifndef RCACHE_SIM_EXPERIMENT_HH
#define RCACHE_SIM_EXPERIMENT_HH

#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "runner/sweep_runner.hh"
#include "sim/search_grid.hh"
#include "sim/system.hh"
#include "util/logging.hh"
#include "workload/profiles.hh"

namespace rcache
{

/** Which L1 a search resizes. */
enum class CacheSide
{
    ICache,
    DCache,
};

/** Printable side name ("icache" / "dcache"). */
std::string cacheSideName(CacheSide side);

/** Outcome of a profiling search for one (app, org, strategy). */
struct SearchOutcome
{
    RunResult baseline;
    RunResult best;
    /** Static: chosen schedule level. */
    unsigned bestLevel = 0;
    /** Dynamic: chosen controller parameters. */
    DynamicParams bestParams;

    /**
     * Paper metric: best E.D normalized to the baseline. A zero
     * baseline E.D (a degenerate run — e.g. a cancelled or
     * zero-instruction baseline) has no meaningful normalization;
     * it returns 0 with a logged warning instead of dividing by
     * zero, and edReductionPct() follows suit.
     */
    double relativeED() const
    {
        if (baseline.edp() == 0) {
            rc_warn("relativeED: zero baseline energy-delay for '" +
                    baseline.workload + "'; returning 0");
            return 0;
        }
        return best.edp() / baseline.edp();
    }
    /** Reduction (%) in processor energy-delay (0 when the baseline
     *  is degenerate; see relativeED). */
    double edReductionPct() const
    {
        if (baseline.edp() == 0)
            return 0;
        return 100.0 * (1.0 - relativeED());
    }
    /** Performance degradation (%) of the best point (0 with a
     *  logged warning when the baseline ran zero cycles — an inf/nan
     *  here would make the sweep CSV unreadable to --resume). */
    double perfDegradationPct() const
    {
        if (baseline.cycles == 0) {
            rc_warn("perfDegradationPct: zero baseline cycles for '" +
                    baseline.workload + "'; returning 0");
            return 0;
        }
        return 100.0 * (static_cast<double>(best.cycles) /
                            static_cast<double>(baseline.cycles) -
                        1.0);
    }
    /** Reduction (%) in average enabled size of @p side (0 with a
     *  logged warning when the baseline size is zero). */
    double sizeReductionPct(CacheSide side) const
    {
        const double full = side == CacheSide::DCache
                                ? baseline.avgDl1Bytes
                                : baseline.avgIl1Bytes;
        const double got = side == CacheSide::DCache
                               ? best.avgDl1Bytes
                               : best.avgIl1Bytes;
        if (full == 0) {
            rc_warn("sizeReductionPct: zero baseline " +
                    cacheSideName(side) + " size for '" +
                    baseline.workload + "'; returning 0");
            return 0;
        }
        return 100.0 * (1.0 - got / full);
    }
};

/**
 * One candidate resize configuration within a search cell: the setup
 * applied to the searched side plus a stable label suffix
 * ("static/L2", "dynamic/G7").
 */
struct SearchCandidate
{
    ResizeSetup setup;
    std::string tag;
};


/** See file comment. */
class Experiment
{
  public:
    /**
     * @param cfg base configuration; the org fields are overridden
     *            per search
     * @param num_insts instructions simulated per run
     */
    Experiment(const SystemConfig &cfg, std::uint64_t num_insts);

    /**
     * Execute search batches on @p runner (not owned; may be null to
     * return to inline execution). The attached runner is also what
     * makes staticSearchBoth profile its two sides concurrently.
     */
    void setRunner(const SweepRunner *runner) { runner_ = runner; }
    const SweepRunner *runner() const { return runner_; }

    /**
     * Apply @p engine to every job this experiment enumerates from
     * now on (baselines included, so normalizations compare like with
     * like). Defaults to full detail. Clears the baseline memo: a
     * memoized full-detail baseline must not normalize runs of
     * another engine.
     */
    void setEngine(const EngineSpec &engine);
    const EngineSpec &engine() const { return engine_; }

    /** Override the dynamic-controller profiling grid (defaults
     *  reproduce the paper's). */
    void setSearchGrid(const SearchGrid &grid) { grid_ = grid; }
    const SearchGrid &searchGrid() const { return grid_; }

    /** Non-resizable run of @p profile (memoized, thread-safe). */
    RunResult baseline(const BenchmarkProfile &profile) const;

    /**
     * Sweep every offered level of @p org on @p side statically and
     * return the minimum-E.D point.
     */
    SearchOutcome staticSearch(const BenchmarkProfile &profile,
                               CacheSide side, Organization org) const;

    /**
     * Grid-search the dynamic controller's miss-bound and size-bound
     * on @p side and return the minimum-E.D point.
     */
    SearchOutcome dynamicSearch(const BenchmarkProfile &profile,
                                CacheSide side, Organization org) const;

    /**
     * Resize both caches together using each side's individually
     * profiled static level (the paper's Fig 9 methodology).
     */
    SearchOutcome staticSearchBoth(const BenchmarkProfile &profile,
                                   Organization org) const;

    /** Run one explicit design point (used by examples/ablations). */
    RunResult runPoint(const BenchmarkProfile &profile,
                       Organization il1_org, Organization dl1_org,
                       const ResizeSetup &il1_setup,
                       const ResizeSetup &dl1_setup) const;

    /** @name Generic grid search
     * All three searches above are thin wrappers over these: a cell's
     * candidates are enumerated (static schedule levels or the
     * dynamic parameter grid), executed as one batch, and reduced to
     * the minimum-E.D candidate under the documented tie-break.
     */
    /// @{

    /** The candidate ResizeSetups a (side, org, strat) cell searches,
     *  in job order (largest cache first for Static; dynamicGrid()
     *  order for Dynamic). */
    std::vector<SearchCandidate>
    searchCandidates(CacheSide side, Organization org,
                     Strategy strat) const;

    /** One job per candidate of the (side, org, strat) cell. */
    std::vector<RunJob> searchJobs(const BenchmarkProfile &profile,
                                   CacheSide side, Organization org,
                                   Strategy strat) const;

    /** Execute a cell's search: candidates + baseline in one batch,
     *  reduced with reduceSearch. */
    SearchOutcome search(const BenchmarkProfile &profile,
                         CacheSide side, Organization org,
                         Strategy strat) const;

    /**
     * Pick the minimum-E.D candidate. Strict `<`: the first minimum
     * in candidate order wins, so equal-E.D ties resolve to the
     * larger cache / lower index (see the file comment).
     * @p candidates must parallel @p results.
     */
    static SearchOutcome
    reduceSearch(const RunResult &baseline,
                 const std::vector<SearchCandidate> &candidates,
                 const std::vector<RunResult> &results);
    /// @}

    /** @name Job enumeration / reduction
     * The searches above are compositions of these; clients that
     * batch many searches into one SweepRunner::run call (the CLI
     * sweep, the benches) use them directly. Jobs are returned in the
     * deterministic order the reductions expect.
     */
    /// @{

    /** The non-resizable baseline point of @p profile as a job. */
    RunJob baselineJob(const BenchmarkProfile &profile) const;

    /** One job per offered level of @p org on @p side (level == job
     *  index). */
    std::vector<RunJob>
    staticSearchJobs(const BenchmarkProfile &profile, CacheSide side,
                     Organization org) const;

    /** One job per dynamic-controller grid point, in
     *  dynamicGrid() order. */
    std::vector<RunJob>
    dynamicSearchJobs(const BenchmarkProfile &profile, CacheSide side,
                      Organization org) const;

    /** Both caches resized together under @p org at each side's
     *  profiled static level (the Fig 9 combined point). */
    RunJob bothStaticJob(const BenchmarkProfile &profile,
                         Organization org, unsigned il1_level,
                         unsigned dl1_level) const;

    /** The (interval, miss-bound, size-bound) grid dynamicSearch
     *  walks for @p side under @p org, in job order. */
    std::vector<DynamicParams> dynamicGrid(CacheSide side,
                                           Organization org) const;

    /** Pick the minimum-E.D static point (reduceSearch with level ==
     *  index candidates; same tie-break). */
    static SearchOutcome
    reduceStatic(const RunResult &baseline,
                 const std::vector<RunResult> &results);

    /** Pick the minimum-E.D dynamic point (reduceSearch over @p grid;
     *  same tie-break); @p grid must parallel @p results. */
    static SearchOutcome
    reduceDynamic(const RunResult &baseline,
                  const std::vector<DynamicParams> &grid,
                  const std::vector<RunResult> &results);

    /**
     * Assemble a side=both outcome (the Fig 9 methodology): the
     * combined run at the two per-side profiled levels is the best
     * point, and the reported level is the dcache side's (matching
     * the per-side CSV convention). Shared by the sweep engine and
     * the adaptive search so their rows cannot drift.
     */
    static SearchOutcome reduceBoth(const RunResult &baseline,
                                    const SearchOutcome &dcacheOut,
                                    const RunResult &combined);
    /// @}

    const SystemConfig &config() const { return cfg_; }
    std::uint64_t numInsts() const { return numInsts_; }

    /** Default dynamic-search miss-bound fractions (SearchGrid's
     *  defaults; exposed for tests/ablations). */
    static const std::vector<double> &missBoundFractions();

    /**
     * Interval lengths searched, in cache accesses. Short intervals
     * amortize the controller's one-interval reaction lag when a
     * working-set phase begins (critical when miss latency is
     * exposed); long intervals resist noise.
     */
    static const std::vector<std::uint64_t> &intervalGrid();

    /** Default controller interval, in cache accesses. */
    static constexpr std::uint64_t dynIntervalAccesses = 8192;

  private:
    SystemConfig configFor(CacheSide side, Organization org) const;
    /** Execute @p jobs on the attached runner, or inline. */
    std::vector<RunResult>
    execute(const std::vector<RunJob> &jobs) const;
    /**
     * Execute @p jobs plus (on a memo miss) the profile's baseline
     * in the same batch, so an attached runner overlaps the
     * baseline with the sweep instead of running it serially first.
     * @return the baseline and the jobs' results, in job order
     */
    std::pair<RunResult, std::vector<RunResult>>
    executeWithBaseline(const BenchmarkProfile &profile,
                        std::vector<RunJob> jobs) const;

    SystemConfig cfg_;
    std::uint64_t numInsts_;
    EngineSpec engine_;
    SearchGrid grid_;
    const SweepRunner *runner_ = nullptr;
    mutable std::mutex memoMtx_;
    mutable std::map<std::string, RunResult> baselineMemo_;
};

} // namespace rcache

#endif // RCACHE_SIM_EXPERIMENT_HH
