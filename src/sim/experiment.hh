/**
 * @file
 * Experiment driver: the paper's offline profiling methodology.
 *
 * Static resizing requires "profiling an application's execution with
 * different static cache sizes to determine the cache size with
 * minimal energy dissipation"; the dynamic controller's miss-bound and
 * size-bound "are extracted offline through profiling". staticSearch/
 * dynamicSearch implement exactly those sweeps and return the
 * minimum-energy-delay point together with the non-resizable baseline
 * it is normalized against.
 */

#ifndef RCACHE_SIM_EXPERIMENT_HH
#define RCACHE_SIM_EXPERIMENT_HH

#include <map>
#include <string>

#include "sim/system.hh"
#include "workload/profiles.hh"

namespace rcache
{

/** Which L1 a search resizes. */
enum class CacheSide
{
    ICache,
    DCache,
};

/** Outcome of a profiling search for one (app, org, strategy). */
struct SearchOutcome
{
    RunResult baseline;
    RunResult best;
    /** Static: chosen schedule level. */
    unsigned bestLevel = 0;
    /** Dynamic: chosen controller parameters. */
    DynamicParams bestParams;

    /** Paper metric: best E.D normalized to the baseline. */
    double relativeED() const { return best.edp() / baseline.edp(); }
    /** Reduction (%) in processor energy-delay. */
    double edReductionPct() const
    {
        return 100.0 * (1.0 - relativeED());
    }
    /** Performance degradation (%) of the best point. */
    double perfDegradationPct() const
    {
        return 100.0 * (static_cast<double>(best.cycles) /
                            static_cast<double>(baseline.cycles) -
                        1.0);
    }
    /** Reduction (%) in average enabled size of @p side. */
    double sizeReductionPct(CacheSide side) const
    {
        const double full = side == CacheSide::DCache
                                ? baseline.avgDl1Bytes
                                : baseline.avgIl1Bytes;
        const double got = side == CacheSide::DCache
                               ? best.avgDl1Bytes
                               : best.avgIl1Bytes;
        return 100.0 * (1.0 - got / full);
    }
};

/** See file comment. */
class Experiment
{
  public:
    /**
     * @param cfg base configuration; the org fields are overridden
     *            per search
     * @param num_insts instructions simulated per run
     */
    Experiment(const SystemConfig &cfg, std::uint64_t num_insts);

    /** Non-resizable run of @p profile (memoized). */
    RunResult baseline(const BenchmarkProfile &profile) const;

    /**
     * Sweep every offered level of @p org on @p side statically and
     * return the minimum-E.D point.
     */
    SearchOutcome staticSearch(const BenchmarkProfile &profile,
                               CacheSide side, Organization org) const;

    /**
     * Grid-search the dynamic controller's miss-bound and size-bound
     * on @p side and return the minimum-E.D point.
     */
    SearchOutcome dynamicSearch(const BenchmarkProfile &profile,
                                CacheSide side, Organization org) const;

    /**
     * Resize both caches together using each side's individually
     * profiled static level (the paper's Fig 9 methodology).
     */
    SearchOutcome staticSearchBoth(const BenchmarkProfile &profile,
                                   Organization org) const;

    /** Run one explicit design point (used by examples/ablations). */
    RunResult runPoint(const BenchmarkProfile &profile,
                       Organization il1_org, Organization dl1_org,
                       const ResizeSetup &il1_setup,
                       const ResizeSetup &dl1_setup) const;

    const SystemConfig &config() const { return cfg_; }
    std::uint64_t numInsts() const { return numInsts_; }

    /** Dynamic-search grid (exposed for tests/ablations). */
    static const std::vector<double> &missBoundFractions();

    /**
     * Interval lengths searched, in cache accesses. Short intervals
     * amortize the controller's one-interval reaction lag when a
     * working-set phase begins (critical when miss latency is
     * exposed); long intervals resist noise.
     */
    static const std::vector<std::uint64_t> &intervalGrid();

    /** Default controller interval, in cache accesses. */
    static constexpr std::uint64_t dynIntervalAccesses = 8192;

  private:
    SystemConfig configFor(CacheSide side, Organization org) const;

    SystemConfig cfg_;
    std::uint64_t numInsts_;
    mutable std::map<std::string, RunResult> baselineMemo_;
};

} // namespace rcache

#endif // RCACHE_SIM_EXPERIMENT_HH
