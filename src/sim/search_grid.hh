/**
 * @file
 * The dynamic controller's offline-profiling grid: the cross product
 * of interval lengths, miss-bound fractions of the interval, and
 * size-bound fractions of the full cache size (0 = unbounded).
 *
 * The defaults reproduce the grid the pre-scenario searches
 * hardcoded. This is the single source of those defaults: Experiment
 * sweeps the grid and ScenarioSpec's [search] section overrides it,
 * so the two layers cannot drift.
 */

#ifndef RCACHE_SIM_SEARCH_GRID_HH
#define RCACHE_SIM_SEARCH_GRID_HH

#include <cstdint>
#include <vector>

namespace rcache
{

/** See file comment. */
struct SearchGrid
{
    std::vector<std::uint64_t> intervals{1024, 8192};
    std::vector<double> missFractions{0.002, 0.008, 0.025, 0.07};
    std::vector<double> sizeFractions{0, 0.25, 0.5, 1.0};

    bool operator==(const SearchGrid &o) const = default;
};

} // namespace rcache

#endif // RCACHE_SIM_SEARCH_GRID_HH
