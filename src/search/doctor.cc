#include "search/doctor.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "runner/claim.hh"
#include "scenario/scenario_spec.hh"
#include "search/decision_log.hh"
#include "sim/report.hh"

namespace rcache
{

namespace
{

std::optional<std::time_t>
mtimeOf(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return std::nullopt;
    return st.st_mtime;
}

/** "r<digits>_s<digits>" — a tune unit name. */
bool
isTuneUnit(const std::string &name)
{
    std::size_t i = 0;
    if (i >= name.size() || name[i] != 'r')
        return false;
    ++i;
    const std::size_t r0 = i;
    while (i < name.size() && std::isdigit(
                                  static_cast<unsigned char>(name[i])))
        ++i;
    if (i == r0 || i + 1 >= name.size() || name[i] != '_' ||
        name[i + 1] != 's')
        return false;
    i += 2;
    const std::size_t s0 = i;
    while (i < name.size() && std::isdigit(
                                  static_cast<unsigned char>(name[i])))
        ++i;
    return i > s0 && i == name.size();
}

/** Strict tune-unit sort: round first, then shard (both numeric). */
std::pair<unsigned long, unsigned long>
tuneUnitKey(const std::string &name)
{
    const std::size_t us = name.find("_s");
    return {std::stoul(name.substr(1, us - 1)),
            std::stoul(name.substr(us + 2))};
}

} // namespace

int
runDoctor(const std::string &dir, const DoctorOptions &opt,
          std::ostream &out)
{
    int verdict = 0;
    std::size_t problems = 0;
    const auto problem = [&](const std::string &what) {
        out << "  PROBLEM: " << what << '\n';
        verdict = 2;
        ++problems;
    };

    // ---- manifest
    std::string err;
    bool corrupt = false;
    const auto mf = readManifest(dir, &err, &corrupt);
    if (!mf) {
        out << "doctor: " << dir << '\n';
        out << "  PROBLEM: " << err
            << (corrupt ? " (damaged manifest: quarantine it by "
                          "re-running a worker with --scenario and "
                          "--shards, or move MANIFEST.meta aside "
                          "by hand)"
                        : "")
            << '\n';
        out << "  verdict: INCONSISTENT (1 problem(s))\n";
        return 2;
    }
    out << "doctor: " << dir << " (" << mf->mode << ", "
        << mf->shards << " shard(s))\n";
    std::string parse_err;
    if (!ScenarioSpec::parseText(mf->scenarioText,
                                 dir + "/MANIFEST.scn", &parse_err))
        problem("MANIFEST.scn does not parse: " + parse_err);

    // ---- enumerate units: sweep units come from the shard count,
    // tune units from whatever rounds actually started.
    std::vector<std::string> units;
    if (mf->mode == "sweep") {
        for (unsigned u = 0; u < mf->shards; ++u)
            units.push_back(sweepUnitName(u));
    } else {
        std::set<std::string> seen;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir)) {
            const std::string name = entry.path().filename().string();
            const std::size_t dot = name.find('.');
            if (dot == std::string::npos)
                continue;
            const std::string stem = name.substr(0, dot);
            const std::string ext = name.substr(dot);
            if ((ext == ".lease" || ext == ".csv" ||
                 ext == ".done") &&
                isTuneUnit(stem))
                seen.insert(stem);
        }
        units.assign(seen.begin(), seen.end());
        std::sort(units.begin(), units.end(),
                  [](const std::string &a, const std::string &b) {
                      return tuneUnitKey(a) < tuneUnitKey(b);
                  });
    }

    // ---- per-unit state
    const ClaimDir claims(dir, opt.leaseTimeoutSecs);
    std::size_t done = 0, live = 0, stale = 0, unclaimed = 0;
    for (const std::string &unit : units) {
        const std::string csv = claims.path(unit + ".csv");
        const bool is_done = claims.isDone(unit);
        const auto lease_mtime = mtimeOf(claims.path(unit + ".lease"));
        std::string state;
        if (is_done) {
            ++done;
            state = "done";
        } else if (lease_mtime) {
            const bool fresh =
                std::time(nullptr) - *lease_mtime <=
                static_cast<std::time_t>(opt.leaseTimeoutSecs);
            ++(fresh ? live : stale);
            state = fresh ? "claimed (lease live)"
                          : "stale (takeover-able)";
        } else {
            ++unclaimed;
            state = "unclaimed";
        }
        out << "  " << unit << ": " << state;
        std::ifstream is(csv, std::ios::binary);
        if (is) {
            std::string csv_err;
            const auto rows = readSweepCsv(is, &csv_err);
            if (rows)
                out << ", csv " << rows->size() << " row(s)";
            else
                out << ", csv DAMAGED";
            out << '\n';
            if (!rows)
                problem("'" + csv + "': " + csv_err);
        } else {
            out << '\n';
            if (is_done)
                problem("'" + unit + "' is marked done but '" + csv +
                        "' is unreadable");
        }
    }
    out << "  units: " << done << " done, " << live << " claimed, "
        << stale << " stale, " << unclaimed << " unclaimed of "
        << units.size() << '\n';

    // ---- crash debris (informational: none of it blocks a rerun)
    std::size_t tmps = 0, asides = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            ++tmps;
        if (name.find(".stale.") != std::string::npos ||
            name.find(".corrupt.") != std::string::npos)
            ++asides;
    }
    if (tmps)
        out << "  note: " << tmps << " orphan tmp file(s) from "
            << "crashed publishes (harmless; delete at will)\n";
    if (asides)
        out << "  note: " << asides << " renamed-aside file(s) "
            << "(.stale./.corrupt. post-mortem evidence)\n";

    // ---- optional decision-log audit
    if (!opt.logPath.empty()) {
        std::ifstream is(opt.logPath, std::ios::binary);
        if (!is) {
            problem("cannot read decision log '" + opt.logPath +
                    "'");
        } else {
            std::ostringstream buf;
            buf << is.rdbuf();
            std::string raw = buf.str();
            if (!raw.empty() && raw.back() != '\n') {
                out << "  note: decision log has a torn final line "
                       "(--resume drops it)\n";
                const std::size_t nl = raw.rfind('\n');
                raw.resize(nl == std::string::npos ? 0 : nl + 1);
            }
            std::istringstream text(raw);
            std::string log_err;
            const auto lines = readDecisionLog(text, &log_err);
            if (!lines)
                problem("decision log '" + opt.logPath +
                        "': " + log_err);
            else
                out << "  log: " << lines->size()
                    << " intact line(s)\n";
        }
    }

    out << (verdict == 0
                ? "  verdict: consistent"
                : "  verdict: INCONSISTENT (" +
                      std::to_string(problems) + " problem(s))")
        << '\n';
    return verdict;
}

} // namespace rcache
