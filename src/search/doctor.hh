/**
 * @file
 * `rcache-sim doctor <claim-dir>`: a read-only consistency audit of
 * a cooperative manifest directory, for operators deciding whether a
 * crashed or interrupted fleet left the directory resumable.
 *
 * The doctor never mutates anything. It classifies every work unit
 * (lease live/stale, done, in progress), verifies each committed
 * unit CSV still parses, and inventories the debris a crash leaves
 * behind (orphan tmp files, renamed-aside stale leases and corrupt
 * files). Optionally it audits a decision log's tail. Exit code 0
 * means consistent (possibly unfinished — that is what reruns are
 * for); 2 means an inconsistency that needs a human: a committed
 * unit whose CSV is damaged, or a manifest that no worker can read.
 */

#ifndef RCACHE_SEARCH_DOCTOR_HH
#define RCACHE_SEARCH_DOCTOR_HH

#include <iosfwd>
#include <string>

namespace rcache
{

struct DoctorOptions
{
    /** Lease age beyond which a unit counts as stale (matches the
     *  workers' --lease-timeout). */
    unsigned leaseTimeoutSecs = 300;
    /** Also audit this decision log's integrity ("" = skip). */
    std::string logPath;
};

/** Audit @p dir, writing the report to @p out. @return 0 consistent,
 *  2 inconsistent (or not a readable manifest directory). */
int runDoctor(const std::string &dir, const DoctorOptions &opt,
              std::ostream &out);

} // namespace rcache

#endif // RCACHE_SEARCH_DOCTOR_HH
