/**
 * @file
 * The cooperative sweep worker (`rcache-sim sweep --claim`) and the
 * shard-merge engine (`rcache-sim merge`).
 *
 * A claim-mode sweep turns one scenario into `shards` work units
 * (shard_0 ... shard_N-1; runner/claim.hh has the lease protocol)
 * that any number of independent worker processes drain together:
 * each worker loops over the units, claims what is free, sweeps the
 * claimed shard into a committed <unit>.csv (written to a private
 * tmp file and renamed, so readers never see a partial CSV), and
 * marks it done. Workers heartbeat their lease after every completed
 * chunk and take over stale units of crashed peers, and no worker
 * exits successfully until *every* unit is done — so a zero exit
 * from any worker means the whole scenario is drained.
 *
 * Merge re-interleaves committed shard CSVs by global cell index
 * into the unsharded report. Because every cell is a pure function
 * of its spec, the merged file is byte-identical to a single-process
 * `rcache-sim sweep` of the same scenario (pinned by the claim
 * tests and the CI orchestration smoke job). Validation is strict:
 * every input must parse, and the union of cells must be exactly
 * 0..N-1 with no duplicates — a missing shard or a foreign CSV is a
 * one-line `path:line:` diagnostic, not a silently short report.
 */

#ifndef RCACHE_SEARCH_SWEEP_MERGE_HH
#define RCACHE_SEARCH_SWEEP_MERGE_HH

#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario_spec.hh"

namespace rcache
{

/** How runClaimSweep coordinates. */
struct ClaimSweepOptions
{
    /** The manifest directory (required). */
    std::string dir;
    /** Shard count when creating the manifest; 0 = join an existing
     *  one. */
    unsigned shards = 0;
    /** Stale-lease takeover threshold, seconds. */
    unsigned leaseTimeoutSecs = 300;
    /** Worker threads per claimed unit (SweepRunner semantics). */
    unsigned jobs = 1;
    bool progress = false;
    bool quiet = false;
};

/**
 * Run one cooperative sweep worker over @p opt.dir. With @p spec the
 * worker creates the manifest when none exists (requires
 * opt.shards > 0) or verifies an existing one matches; without, it
 * joins the manifest's scenario. Returns 0 only once every unit of
 * the manifest is done. Diagnostics go to stderr with the CLI's
 * "rcache-sim:" prefix; @return a process exit code.
 */
int runClaimSweep(const std::optional<ScenarioSpec> &spec,
                  const ClaimSweepOptions &opt);

/**
 * Merge shard CSVs into the unsharded report (@p outPath; empty =
 * stdout). @p inputs is either a list of shard CSV paths or a single
 * manifest directory, whose committed unit CSVs are merged (every
 * unit must be done). @return a process exit code (0 ok, 2 on a
 * missing/unparsable input or an incomplete cell cover).
 */
int runSweepMerge(const std::vector<std::string> &inputs,
                  const std::string &outPath);

} // namespace rcache

#endif // RCACHE_SEARCH_SWEEP_MERGE_HH
