#include "search/decision_log.hh"

#include <istream>
#include <sstream>

#include "util/checked_io.hh"

namespace rcache
{

namespace
{

std::string
joinCells(const std::vector<std::size_t> &cells)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < cells.size(); ++i)
        os << (i ? "," : "") << cells[i];
    return os.str();
}

} // namespace

std::string
tunePlanLine(const std::string &scenario, std::uint64_t insts,
             std::size_t apps, std::size_t points, std::size_t cells,
             const std::string &ladder, const std::string &promote,
             std::uint64_t min_survivors, std::uint64_t rank_agree,
             std::uint64_t sample_interval)
{
    std::ostringstream os;
    os << "{\"schema\":\"rcache-tune-v1\",\"scenario\":\"" << scenario
       << "\",\"insts\":" << insts << ",\"apps\":" << apps
       << ",\"points\":" << points << ",\"cells\":" << cells
       << ",\"ladder\":\"" << ladder << "\",\"promote\":\"" << promote
       << "\",\"min_survivors\":" << min_survivors
       << ",\"rank_agree\":" << rank_agree
       << ",\"sample_interval\":" << sample_interval << "}";
    return os.str();
}

std::string
tuneRoundLine(std::size_t round, const std::string &engine,
              std::size_t candidates)
{
    std::ostringstream os;
    os << "{\"event\":\"round\",\"round\":" << round
       << ",\"engine\":\"" << engine
       << "\",\"candidates\":" << candidates << "}";
    return os.str();
}

std::string
tuneScoreLine(std::size_t round, std::size_t cell,
              const std::string &score, const std::string &row)
{
    std::ostringstream os;
    os << "{\"event\":\"score\",\"round\":" << round
       << ",\"cell\":" << cell << ",\"score\":" << score
       << ",\"row\":\"" << row << "\"}";
    return os.str();
}

std::string
tunePromoteLine(std::size_t round,
                const std::vector<std::size_t> &rank,
                std::size_t keep)
{
    std::ostringstream os;
    os << "{\"event\":\"promote\",\"round\":" << round
       << ",\"rank\":\"" << joinCells(rank) << "\",\"keep\":" << keep
       << ",\"dropped\":" << rank.size() - keep << "}";
    return os.str();
}

std::string
tuneEarlyExitLine(std::size_t round,
                  const std::vector<std::size_t> &top)
{
    std::ostringstream os;
    os << "{\"event\":\"early-exit\",\"round\":" << round
       << ",\"top\":\"" << joinCells(top) << "\"}";
    return os.str();
}

std::string
tuneWinnerLine(std::size_t cell, const std::string &app,
               const std::string &score, const std::string &engine,
               std::size_t rounds, std::uint64_t detailed_insts,
               std::uint64_t exhaustive_detailed_insts)
{
    std::ostringstream os;
    os << "{\"event\":\"winner\",\"cell\":" << cell << ",\"app\":\""
       << app << "\",\"score\":" << score << ",\"engine\":\""
       << engine << "\",\"rounds\":" << rounds
       << ",\"detailed_insts\":" << detailed_insts
       << ",\"exhaustive_detailed_insts\":"
       << exhaustive_detailed_insts << "}";
    return os.str();
}

std::string
DecisionLogLine::get(const std::string &key) const
{
    auto it = fields.find(key);
    return it == fields.end() ? "" : it->second;
}

std::optional<std::vector<DecisionLogLine>>
readDecisionLog(std::istream &in, std::string *err)
{
    const auto failWith = [&](int line_no, const std::string &why) {
        if (err)
            *err = "line " + std::to_string(line_no) + ": " + why;
        return std::nullopt;
    };

    std::vector<DecisionLogLine> out;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        DecisionLogLine parsed;
        parsed.raw = line;
        // Strict flat-object scan: {"k":"v",...} or {"k":123,...}.
        // The builders emit no escapes, nesting, or whitespace, so
        // anything else is a malformed log.
        std::size_t i = 0;
        const auto expect = [&](char c) {
            if (i >= line.size() || line[i] != c)
                return false;
            ++i;
            return true;
        };
        if (!expect('{'))
            return failWith(line_no, "expected '{'");
        bool first = true;
        while (i < line.size() && line[i] != '}') {
            if (!first && !expect(','))
                return failWith(line_no, "expected ','");
            first = false;
            if (!expect('"'))
                return failWith(line_no, "expected '\"' before key");
            const std::size_t kend = line.find('"', i);
            if (kend == std::string::npos)
                return failWith(line_no, "unterminated key");
            const std::string key = line.substr(i, kend - i);
            i = kend + 1;
            if (!expect(':'))
                return failWith(line_no, "expected ':'");
            std::string value;
            if (i < line.size() && line[i] == '"') {
                ++i;
                const std::size_t vend = line.find('"', i);
                if (vend == std::string::npos)
                    return failWith(line_no, "unterminated value");
                value = line.substr(i, vend - i);
                i = vend + 1;
            } else {
                const std::size_t vend =
                    line.find_first_of(",}", i);
                if (vend == std::string::npos || vend == i)
                    return failWith(line_no, "bad bare value");
                value = line.substr(i, vend - i);
                i = vend;
            }
            if (!parsed.fields.emplace(key, value).second)
                return failWith(line_no,
                                "duplicate key '" + key + "'");
        }
        if (!expect('}') || i != line.size())
            return failWith(line_no, "trailing bytes after '}'");
        if (parsed.fields.empty())
            return failWith(line_no, "empty object");
        out.push_back(std::move(parsed));
    }
    return out;
}

bool
DecisionLogWriter::open(const std::string &path)
{
    path_ = path;
    if (path_.empty())
        return true;
    os_.open(path_, std::ios::binary | std::ios::trunc);
    return static_cast<bool>(os_);
}

void
DecisionLogWriter::append(const std::string &line)
{
    text_ += line;
    text_ += '\n';
    if (os_.is_open())
        checkedAppend(os_, line + "\n", path_, "log.append");
}

} // namespace rcache
