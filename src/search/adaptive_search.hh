/**
 * @file
 * Adaptive design-space search: successive halving over the engine
 * fidelity ladder (`rcache-sim tune`).
 *
 * The exhaustive sweep prices every (app, design point) cell at full
 * detail; this engine finds the best-E·D cell while running only a
 * small fraction of the grid there. Round 0 prices *every* candidate
 * with the ladder's cheapest rung (the analytic engine: one shared
 * stack-distance pass per workload stream key, via AnalyticBatch),
 * ranks cells by relative E·D (best/baseline — the paper's metric,
 * comparable across apps), and promotes only the top fraction;
 * survivors advance to sampled runs, and only the finalists are
 * verified at full detail, whose winner row is byte-identical to the
 * exhaustive sweep's row for that cell. Promotion fractions, the
 * survivor floor, a rank-agreement early exit, and the sampled
 * rung's period budget all come from the scenario's
 * `[search] mode = adaptive` block (scenario/scenario_spec.hh).
 *
 * Every allocation decision is appended to the JSONL decision log
 * (search/decision_log.hh): candidate set, scores (with each
 * candidate's exact sweep-CSV row), promotion verdicts, engine per
 * round, and the final winner with detailed-instruction accounting.
 * The log and the winner CSV are byte-identical across --jobs
 * values, claim workers, and resumes.
 *
 * Cooperative mode: with a claim directory (runner/claim.hh), each
 * round becomes `shards` work units named r<round>_s<shard>; workers
 * atomically claim units, evaluate their candidate slice, publish
 * the slice as a committed CSV, and barrier on the round before
 * computing the (identical) promotion verdict locally. N workers
 * drain one tune with no coordinator, and every worker writes the
 * same decision log bytes.
 *
 * Resume: --resume replays completed rounds from the log's score
 * rows instead of re-running them, verifies the replay against the
 * scenario (plan line, candidate sets), and continues from the first
 * incomplete round; the regenerated log equals an uninterrupted
 * run's.
 */

#ifndef RCACHE_SEARCH_ADAPTIVE_SEARCH_HH
#define RCACHE_SEARCH_ADAPTIVE_SEARCH_HH

#include <cstdint>
#include <string>

#include "scenario/param_space.hh"
#include "sim/report.hh"

namespace rcache
{

/** How runAdaptiveSearch executes and reports. */
struct TuneOptions
{
    /** Worker threads for detailed/sampled rounds (SweepRunner
     *  semantics: 0 = all cores). */
    unsigned jobs = 1;
    /** Decision-log JSONL path ("" = no log file). */
    std::string logPath;
    /** Winner-row CSV destination; empty = stdout. */
    std::string outPath;
    /** Non-empty: replay completed rounds from this decision log. */
    std::string resumePath;
    /** Non-empty: cooperative mode over this manifest directory. */
    std::string claimDir;
    /** Shard count when creating a claim manifest (0 = join an
     *  existing one). */
    unsigned shards = 0;
    /** Stale-lease takeover threshold, seconds. */
    unsigned leaseTimeoutSecs = 300;
    /** Suppress the stderr summary (tests, benches). */
    bool quiet = false;
    /** When false, write neither the winner CSV nor the log file —
     *  the bench harness reads TuneStats instead. */
    bool emitOutputs = true;
};

/** What a finished tune measured (filled even when quiet). */
struct TuneStats
{
    std::size_t cells = 0;
    /** Rounds actually run (< ladder size on early exit). */
    std::size_t rounds = 0;
    bool earlyExit = false;
    /** Timing-core instructions the adaptive schedule simulates in
     *  detail, summed over every round's jobs (plan arithmetic via
     *  EngineSpec::detailedInstsFor; equals the measured total). */
    std::uint64_t detailedInsts = 0;
    /** The same accounting for an exhaustive sweep of the whole
     *  grid at the scenario's engine. */
    std::uint64_t exhaustiveDetailedInsts = 0;
    SweepRecord winner;
    /** The full decision log, byte-exact. */
    std::string logText;
};

/**
 * Run the adaptive search. Diagnostics go to stderr with the CLI's
 * "rcache-sim:" prefix; @return a process exit code (0 ok, 2 on
 * configuration, claim, or resume-validation errors).
 */
int runAdaptiveSearch(const ParamSpace &space, const TuneOptions &opt,
                      TuneStats *stats = nullptr);

/** Convenience: build the ParamSpace for @p spec first. */
int runAdaptiveSearch(const ScenarioSpec &spec,
                      const TuneOptions &opt,
                      TuneStats *stats = nullptr);

} // namespace rcache

#endif // RCACHE_SEARCH_ADAPTIVE_SEARCH_HH
