#include "search/sweep_merge.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "fault/failpoint.hh"
#include "runner/claim.hh"
#include "scenario/scenario_sweep.hh"
#include "sim/report.hh"
#include "util/checked_io.hh"
#include "util/interrupt.hh"
#include "util/numformat.hh"

namespace rcache
{

namespace
{

int
fail(const std::string &msg)
{
    std::cerr << "rcache-sim: " << msg << '\n';
    return 2;
}

/** Rewrite readSweepCsv's "sweep csv line N: why" as the standard
 *  one-line "<path>:N: why" diagnostic. */
std::string
remapCsvError(const std::string &path, const std::string &err)
{
    const std::string prefix = "sweep csv line ";
    if (err.rfind(prefix, 0) == 0) {
        const std::size_t colon = err.find(':', prefix.size());
        if (colon != std::string::npos) {
            const std::string line_no =
                err.substr(prefix.size(), colon - prefix.size());
            unsigned long long n = 0;
            if (parseU64Strict(line_no, n))
                return path + ":" + line_no + err.substr(colon);
        }
    }
    return path + ":1: " + err;
}

/** Read one shard CSV strictly; nullopt with a "<path>:N:" @p err. */
std::optional<std::vector<SweepRecord>>
readShardCsv(const std::string &path, std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        *err = path + ":1: cannot open";
        return std::nullopt;
    }
    std::string csv_err;
    auto records = readSweepCsv(is, &csv_err);
    if (!records) {
        *err = remapCsvError(path, csv_err);
        return std::nullopt;
    }
    return records;
}

} // namespace

int
runClaimSweep(const std::optional<ScenarioSpec> &spec,
              const ClaimSweepOptions &opt)
{
    // ---- create or join the manifest
    std::string read_err;
    bool mf_corrupt = false;
    auto mf = readManifest(opt.dir, &read_err, &mf_corrupt);
    if (!mf) {
        if (!spec)
            return fail(read_err);
        if (opt.shards == 0)
            return fail("creating a manifest in '" + opt.dir +
                        "' needs --shards N");
        // A worker that carries the full spec can recover a damaged
        // manifest: move it aside, re-create from the scenario.
        if (mf_corrupt) {
            std::string q_err;
            if (!quarantineManifest(opt.dir, &q_err))
                return fail(read_err + "; " + q_err);
        }
        ManifestInfo info;
        info.mode = "sweep";
        info.shards = opt.shards;
        info.scenarioText = spec->printToString();
        std::string write_err;
        if (writeManifest(opt.dir, info, &write_err)) {
            mf = info;
        } else {
            // Lost the creation race; join what the winner wrote.
            mf = readManifest(opt.dir, &read_err);
            if (!mf)
                return fail(write_err);
        }
    }
    if (mf->mode != "sweep")
        return fail("manifest in '" + opt.dir + "' is a " +
                    mf->mode + " manifest, not a sweep");
    if (spec && spec->printToString() != mf->scenarioText)
        return fail("manifest in '" + opt.dir +
                    "' was created for a different scenario");
    if (opt.shards != 0 && opt.shards != mf->shards)
        return fail("--shards " + std::to_string(opt.shards) +
                    " does not match the manifest's " +
                    std::to_string(mf->shards));

    std::string parse_err;
    const auto mf_spec = ScenarioSpec::parseText(
        mf->scenarioText, opt.dir + "/MANIFEST.scn", &parse_err);
    if (!mf_spec)
        return fail(parse_err);
    std::string build_err;
    const auto space = ParamSpace::build(*mf_spec, &build_err);
    if (!space)
        return fail(build_err);

    // ---- drain units; exit 0 only when the whole scenario is done,
    // so any worker's success certifies the manifest is complete.
    const ClaimDir claims(opt.dir, opt.leaseTimeoutSecs);
    const unsigned shards = mf->shards;
    for (;;) {
        if (interruptRequested()) {
            std::cerr << "rcache-sim: interrupted; committed units "
                         "stay done, rerun to continue '"
                      << opt.dir << "'\n";
            return interruptExitCode();
        }
        bool progressed = false;
        for (unsigned u = 0; u < shards; ++u) {
            const std::string unit = sweepUnitName(u);
            if (interruptRequested())
                break;
            if (claims.isDone(unit) || !claims.tryClaim(unit))
                continue;
            SweepOptions so;
            so.jobs = opt.jobs;
            so.shard = ShardSpec{u, shards};
            so.format = "csv";
            const std::string tmp =
                claims.path(unit + ".csv.tmp." +
                            std::to_string(::getpid()));
            so.outPath = tmp;
            so.progress = opt.progress;
            so.quiet = opt.quiet;
            so.chunkDone = [&](std::size_t) {
                claims.heartbeat(unit);
            };
            const int rc = runScenarioSweep(*space, so);
            if (rc != 0) {
                std::remove(tmp.c_str());
                if (interruptRequested()) {
                    // Give the unit straight back: a released lease
                    // is immediately claimable, no timeout needed.
                    claims.release(unit);
                    std::cerr << "rcache-sim: interrupted; released "
                                 "'" << unit << "', rerun to "
                                 "continue '" << opt.dir << "'\n";
                    return rc;
                }
                // Leave the lease: it goes stale and a peer (or a
                // rerun) takes the unit over.
                return rc;
            }
            if (RC_FAILPOINT("claim.unit.publish") !=
                    fault::Fire::None ||
                std::rename(tmp.c_str(),
                            claims.path(unit + ".csv").c_str()) != 0)
                return fail("cannot publish '" +
                            claims.path(unit + ".csv") + "'");
            std::string done_err;
            if (!claims.markDone(unit, &done_err))
                return fail(done_err);
            progressed = true;
        }
        bool all_done = true;
        for (unsigned u = 0; u < shards; ++u)
            if (!claims.isDone(sweepUnitName(u)))
                all_done = false;
        if (all_done)
            break;
        if (!progressed)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    if (!opt.quiet)
        std::cerr << "claim: all " << shards << " unit(s) of '" +
                         opt.dir + "' are done\n";
    return 0;
}

int
runSweepMerge(const std::vector<std::string> &inputs,
              const std::string &outPath)
{
    if (inputs.empty())
        return fail("merge needs shard CSVs or a manifest "
                    "directory");

    // A single directory input means "merge this manifest".
    std::vector<std::string> paths = inputs;
    if (inputs.size() == 1 &&
        std::filesystem::is_directory(inputs[0])) {
        std::string err;
        const auto mf = readManifest(inputs[0], &err);
        if (!mf)
            return fail(err);
        if (mf->mode != "sweep")
            return fail("manifest in '" + inputs[0] + "' is a " +
                        mf->mode +
                        " manifest; merge reads sweep manifests");
        const ClaimDir claims(inputs[0], 0);
        paths.clear();
        for (unsigned u = 0; u < mf->shards; ++u) {
            const std::string unit = sweepUnitName(u);
            if (!claims.isDone(unit))
                return fail("unit '" + unit + "' of '" + inputs[0] +
                            "' is not done yet; merge after the "
                            "workers finish");
            paths.push_back(claims.path(unit + ".csv"));
        }
    }

    std::vector<SweepRecord> all;
    for (const std::string &path : paths) {
        std::string err;
        const auto records = readShardCsv(path, &err);
        if (!records)
            return fail(err);
        all.insert(all.end(), records->begin(), records->end());
    }
    std::sort(all.begin(), all.end(),
              [](const SweepRecord &a, const SweepRecord &b) {
                  return a.cell < b.cell;
              });
    // The merged cells must be exactly 0..N-1: a duplicate is a
    // repeated shard, a gap is a missing one. Both are silent-loss
    // bugs if let through, so both are hard errors.
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i].cell == i)
            continue;
        if (i > 0 && all[i].cell == all[i - 1].cell)
            return fail("cell " + std::to_string(all[i].cell) +
                        " appears in more than one input (same "
                        "shard merged twice?)");
        return fail("cell " + std::to_string(i) +
                    " is missing from the inputs (merge wants "
                    "every shard of one scenario)");
    }

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!outPath.empty()) {
        file.open(outPath, std::ios::binary | std::ios::trunc);
        if (!file)
            return fail("cannot write '" + outPath + "'");
        os = &file;
    }
    const std::string outName =
        outPath.empty() ? "<stdout>" : outPath;
    std::ostringstream out;
    out << sweepCsvHeader() << '\n';
    writeSweepCsvRows(out, all);
    checkedAppend(*os, out.str(), outName, "merge.out.flush");
    return 0;
}

} // namespace rcache
