/**
 * @file
 * The adaptive search's decision log: a deterministic, replayable
 * JSONL record of every allocation decision `rcache-sim tune` makes.
 *
 * One line per event, in execution order:
 *
 *   {"schema":"rcache-tune-v1","scenario":...}        the plan
 *   {"event":"round","round":R,"engine":...}          round header
 *   {"event":"score","round":R,"cell":C,...}          one per
 *       candidate, ascending cell order; carries the candidate's
 *       exact sweep-CSV row so the log alone replays the search
 *   {"event":"promote","round":R,"rank":...}          the ranking
 *       and survivor verdict of a non-final round
 *   {"event":"early-exit","round":R,"top":...}        rank-agreement
 *       stop (only when [search] rank-agree fires)
 *   {"event":"winner","cell":C,...}                   final verdict
 *       with detailed-instruction accounting
 *
 * Every byte is a pure function of the scenario spec: scores come
 * from shortestDouble over values that round-trip bit-identically
 * through sweep CSVs, rankings from post-barrier reductions. So the
 * log is byte-identical across --jobs values, claim workers, and
 * resumes — the same identity contract the golden tests pin for
 * exhaustive sweep CSVs. Line *builders* live here so the writer
 * (search/adaptive_search.cc) and any replayer agree on the exact
 * bytes; the reader below parses the flat one-object-per-line form
 * strictly, for --resume and for tests.
 */

#ifndef RCACHE_SEARCH_DECISION_LOG_HH
#define RCACHE_SEARCH_DECISION_LOG_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rcache
{

/** @name Line builders (no trailing newline) */
/// @{

/** The plan header; @p ladder / @p promote are the canonical
 *  comma-joined token lists. */
std::string tunePlanLine(const std::string &scenario,
                         std::uint64_t insts, std::size_t apps,
                         std::size_t points, std::size_t cells,
                         const std::string &ladder,
                         const std::string &promote,
                         std::uint64_t minSurvivors,
                         std::uint64_t rankAgree,
                         std::uint64_t sampleInterval);

std::string tuneRoundLine(std::size_t round,
                          const std::string &engine,
                          std::size_t candidates);

/** @p score is already formatted (shortestDouble or "inf");
 *  @p row is the candidate's exact sweep-CSV row. */
std::string tuneScoreLine(std::size_t round, std::size_t cell,
                          const std::string &score,
                          const std::string &row);

/** @p rank is the full best-first cell ranking; the first @p keep
 *  entries survive into the next round. */
std::string tunePromoteLine(std::size_t round,
                            const std::vector<std::size_t> &rank,
                            std::size_t keep);

std::string tuneEarlyExitLine(std::size_t round,
                              const std::vector<std::size_t> &top);

std::string tuneWinnerLine(std::size_t cell, const std::string &app,
                           const std::string &score,
                           const std::string &engine,
                           std::size_t rounds,
                           std::uint64_t detailedInsts,
                           std::uint64_t exhaustiveDetailedInsts);
/// @}

/** One parsed log line: the raw bytes plus its flat fields (string
 *  values unquoted, numbers kept as written). */
struct DecisionLogLine
{
    std::string raw;
    std::map<std::string, std::string> fields;

    /** "" when the field is absent. */
    std::string get(const std::string &key) const;
};

/**
 * Strict reader: every line must be a flat JSON object in the form
 * the builders above emit (string or bare-number values, no nesting,
 * no escapes). On failure returns nullopt and sets @p err to one
 * "line N: why" message.
 */
std::optional<std::vector<DecisionLogLine>>
readDecisionLog(std::istream &in, std::string *err);

/**
 * The log writer: appends builder lines one at a time, each write
 * checked and flushed (util/checked_io.hh — a failed append exits
 * kIoErrorExit after a one-line diagnostic), so the on-disk log
 * always ends at a line boundary except across a mid-write crash,
 * which --resume detects as a torn tail and drops. Also accumulates
 * the full text for byte-identity tests. Not opening a file (empty
 * path) keeps it a pure accumulator.
 */
class DecisionLogWriter
{
  public:
    /** Truncate-open @p path ("" = accumulate only). @return false
     *  when the file cannot be opened. */
    bool open(const std::string &path);

    /** Append one builder line (newline added here). */
    void append(const std::string &line);

    /** Everything appended so far, newline-terminated lines. */
    const std::string &text() const { return text_; }

  private:
    std::ofstream os_;
    std::string path_;
    std::string text_;
};

} // namespace rcache

#endif // RCACHE_SEARCH_DECISION_LOG_HH
