#include "search/adaptive_search.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>

#include "analytic/analytic_engine.hh"
#include "runner/claim.hh"
#include "scenario/cell_eval.hh"
#include "search/decision_log.hh"
#include "sim/experiment.hh"
#include "util/checked_io.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "util/numformat.hh"

namespace rcache
{

namespace
{

int
fail(const std::string &msg)
{
    std::cerr << "rcache-sim: " << msg << '\n';
    return 2;
}

/** What every round evaluation reads (outlives the executors). */
struct TuneContext
{
    const ParamSpace *space = nullptr;
    const std::vector<AppEntry> *apps = nullptr;
    std::uint64_t insts = 0;
    SearchGrid grid;
    std::size_t npoints = 0;
};

/** One cell of a round's batch (the tune twin of the sweep's
 *  CellPlan; same offsets, same reductions). */
struct CellWork
{
    std::size_t cell = 0;
    std::size_t app = 0;
    DesignPoint point;
    std::string baseKey;
    std::size_t off = 0, count = 0;
    std::size_t ioff = 0, icount = 0;
    std::vector<SearchCandidate> candidates;
};

struct RoundBatch
{
    std::vector<RunJob> jobs;
    std::vector<CellWork> cells;
    /** Baselines first seen in this batch: key -> job index. */
    std::vector<std::pair<std::string, std::size_t>> newBases;
};

/**
 * Enumerate @p cells' jobs under the rung's @p engine — the same
 * baseline-memo / candidate layout the sweep engine builds, minus
 * chunking (a round is one batch). The rung engine overrides the
 * scenario's: that is the fidelity ladder.
 */
RoundBatch
buildBatch(const TuneContext &ctx,
           const std::vector<std::size_t> &cells,
           const EngineSpec &engine)
{
    RoundBatch b;
    std::map<std::string, std::size_t> base_at;
    for (const std::size_t cell : cells) {
        CellWork w;
        w.cell = cell;
        w.app = cell / ctx.npoints;
        w.point = ctx.space->point(cell % ctx.npoints);
        w.point.engine = engine;
        const EffectiveWorkload eff =
            effectiveWorkload((*ctx.apps)[w.app], w.point);

        Experiment exp(w.point.cfg, ctx.insts);
        exp.setEngine(engine);
        exp.setSearchGrid(ctx.grid);

        w.baseKey =
            baselineKey(exp.config(), engine, eff.label.name);
        if (!base_at.count(w.baseKey)) {
            base_at[w.baseKey] = b.jobs.size();
            b.newBases.emplace_back(w.baseKey, b.jobs.size());
            b.jobs.push_back(exp.baselineJob(eff.label));
            attachMix(b.jobs.end() - 1, b.jobs.end(), eff);
        }

        if (w.point.side == SweepSide::Both) {
            auto d = exp.staticSearchJobs(eff.label,
                                          CacheSide::DCache,
                                          w.point.org);
            attachMix(d.begin(), d.end(), eff);
            w.off = b.jobs.size();
            w.count = d.size();
            b.jobs.insert(b.jobs.end(), d.begin(), d.end());
            auto ij = exp.staticSearchJobs(eff.label,
                                           CacheSide::ICache,
                                           w.point.org);
            attachMix(ij.begin(), ij.end(), eff);
            w.ioff = b.jobs.size();
            w.icount = ij.size();
            b.jobs.insert(b.jobs.end(), ij.begin(), ij.end());
        } else {
            const CacheSide side = cacheSideOf(w.point.side);
            w.candidates = exp.searchCandidates(side, w.point.org,
                                                w.point.strategy);
            auto jobs = exp.searchJobs(eff.label, side, w.point.org,
                                       w.point.strategy);
            attachMix(jobs.begin(), jobs.end(), eff);
            w.off = b.jobs.size();
            w.count = jobs.size();
            b.jobs.insert(b.jobs.end(), jobs.begin(), jobs.end());
        }
        b.cells.push_back(std::move(w));
    }
    return b;
}

/**
 * Jobs the round's single-batch schedule runs (baselines memoized,
 * one phase-2 job per side=both cell). This is the cost model the
 * decision log accounts with — claim workers re-run baselines their
 * shard does not share, but every worker logs the same plan-time
 * number, which keeps the log byte-identical across modes.
 */
std::size_t
plannedRoundJobs(const TuneContext &ctx,
                 const std::vector<std::size_t> &cells,
                 const EngineSpec &engine)
{
    const RoundBatch b = buildBatch(ctx, cells, engine);
    std::size_t n = b.jobs.size();
    for (const CellWork &w : b.cells)
        if (w.point.side == SweepSide::Both)
            ++n;
    return n;
}

/**
 * Evaluate @p cells under @p engine and return their SweepRecords in
 * @p cells order. Mirrors the sweep engine's execute/reduce path via
 * the shared cell_eval vocabulary, so the rows are byte-identical to
 * an exhaustive sweep's at the same engine.
 */
std::vector<SweepRecord>
evaluateCells(const TuneContext &ctx,
              const std::vector<std::size_t> &cells,
              const EngineSpec &engine, unsigned jobs)
{
    RoundBatch b = buildBatch(ctx, cells, engine);

    // Analytic rungs price through shared stack-distance passes;
    // everything else runs on the pool. Register before running:
    // a pass cannot learn new geometries once it has run.
    AnalyticBatch analytic;
    std::optional<SweepRunner> runner;
    if (engine.analytic()) {
        for (const CellWork &w : b.cells) {
            const EffectiveWorkload eff =
                effectiveWorkload((*ctx.apps)[w.app], w.point);
            analytic.registerConfig(w.point.cfg, eff.label,
                                    ctx.insts);
        }
    } else {
        runner.emplace(jobs);
    }
    const auto execute = [&](const std::vector<RunJob> &js) {
        return engine.analytic() ? analytic.price(js)
                                 : runner->run(js);
    };

    const auto results = execute(b.jobs);
    std::map<std::string, RunResult> bases;
    for (const auto &[key, idx] : b.newBases)
        bases[key] = results[idx];

    // Side=both cells: second phase at the two profiled levels.
    std::vector<RunJob> phase2;
    std::vector<std::size_t> phase2_at(b.cells.size(), 0);
    std::vector<SearchOutcome> douts(b.cells.size());
    for (std::size_t i = 0; i < b.cells.size(); ++i) {
        const CellWork &w = b.cells[i];
        if (w.point.side != SweepSide::Both)
            continue;
        const RunResult &base = bases.at(w.baseKey);
        douts[i] = Experiment::reduceStatic(
            base, {results.begin() + w.off,
                   results.begin() + w.off + w.count});
        const SearchOutcome iout = Experiment::reduceStatic(
            base, {results.begin() + w.ioff,
                   results.begin() + w.ioff + w.icount});
        Experiment exp(w.point.cfg, ctx.insts);
        exp.setEngine(engine);
        const EffectiveWorkload eff =
            effectiveWorkload((*ctx.apps)[w.app], w.point);
        phase2_at[i] = phase2.size();
        phase2.push_back(exp.bothStaticJob(eff.label, w.point.org,
                                           iout.bestLevel,
                                           douts[i].bestLevel));
        attachMix(phase2.end() - 1, phase2.end(), eff);
    }
    const auto results2 = execute(phase2);

    std::vector<SweepRecord> records;
    records.reserve(b.cells.size());
    for (std::size_t i = 0; i < b.cells.size(); ++i) {
        const CellWork &w = b.cells[i];
        const RunResult &base = bases.at(w.baseKey);
        SearchOutcome out;
        if (w.point.side == SweepSide::Both)
            out = Experiment::reduceBoth(base, douts[i],
                                         results2[phase2_at[i]]);
        else
            out = Experiment::reduceSearch(
                base, w.candidates,
                {results.begin() + w.off,
                 results.begin() + w.off + w.count});
        records.push_back(cellRecord(
            w.cell, (*ctx.apps)[w.app].name, w.point, out));
    }
    return records;
}

/**
 * A cell's score: relative E·D (best/baseline), the paper's metric,
 * computed in double arithmetic from SweepRecord fields — which
 * round-trip bit-identically through CSVs, so a claim worker scoring
 * parsed rows gets the exact bytes a local run gets. A degenerate
 * zero-E·D baseline scores a finite sentinel that ranks last
 * (shortestDouble of an infinity would not round-trip).
 */
double
scoreOf(const SweepRecord &r)
{
    return r.baselineEdp > 0
               ? r.bestEdp / r.baselineEdp
               : std::numeric_limits<double>::max();
}

/** One record as its exact sweep-CSV row (no newline). */
std::string
csvRowOf(const SweepRecord &r)
{
    std::ostringstream os;
    writeSweepCsvRows(os, {r});
    std::string row = os.str();
    if (!row.empty() && row.back() == '\n')
        row.pop_back();
    return row;
}

/** How a round's records get produced: locally, or cooperatively
 *  through a claim directory. */
class RoundExecutor
{
  public:
    virtual ~RoundExecutor() = default;
    /** Records in ascending-cell order, or nullopt with @p err. */
    virtual std::optional<std::vector<SweepRecord>>
    run(std::size_t round, const EngineSpec &engine,
        const std::vector<std::size_t> &cells, std::string *err) = 0;
};

class LocalExecutor final : public RoundExecutor
{
  public:
    LocalExecutor(const TuneContext &ctx, unsigned jobs)
        : ctx_(ctx), jobs_(jobs)
    {
    }

    std::optional<std::vector<SweepRecord>>
    run(std::size_t, const EngineSpec &engine,
        const std::vector<std::size_t> &cells, std::string *) override
    {
        return evaluateCells(ctx_, cells, engine, jobs_);
    }

  private:
    TuneContext ctx_;
    unsigned jobs_;
};

/**
 * Cooperative rounds: the candidate list is dealt round-robin into
 * `shards` units named r<round>_s<shard>; workers claim units,
 * publish their slice as a committed CSV, and barrier on the round
 * (claiming stale units of crashed peers) before everyone gathers
 * the identical record set. Double evaluation after a takeover race
 * is benign — slices are deterministic, so both writers commit the
 * same bytes.
 */
class ClaimExecutor final : public RoundExecutor
{
  public:
    ClaimExecutor(const TuneContext &ctx, unsigned jobs,
                  ClaimDir claims, unsigned shards)
        : ctx_(ctx), jobs_(jobs), claims_(std::move(claims)),
          shards_(shards)
    {
    }

    std::optional<std::vector<SweepRecord>>
    run(std::size_t round, const EngineSpec &engine,
        const std::vector<std::size_t> &cells,
        std::string *err) override
    {
        std::vector<std::string> units;
        for (unsigned u = 0; u < shards_; ++u)
            units.push_back(tuneUnitName(round, u));

        for (;;) {
            // Units commit one at a time (publish + done marker), so
            // between units there is nothing to release — a polite
            // interrupt just stops claiming.
            if (interruptRequested()) {
                if (err)
                    *err = "interrupted";
                return std::nullopt;
            }
            bool progressed = false;
            for (unsigned u = 0; u < shards_; ++u) {
                if (interruptRequested())
                    break;
                if (claims_.isDone(units[u]) ||
                    !claims_.tryClaim(units[u]))
                    continue;
                std::vector<std::size_t> mine;
                for (std::size_t p = u; p < cells.size();
                     p += shards_)
                    mine.push_back(cells[p]);
                const auto recs =
                    evaluateCells(ctx_, mine, engine, jobs_);
                std::ostringstream os;
                os << sweepCsvHeader() << '\n';
                writeSweepCsvRows(os, recs);
                if (!atomicWriteFile(
                        claims_.path(units[u] + ".csv"), os.str(),
                        err))
                    return std::nullopt;
                if (!claims_.markDone(units[u], err))
                    return std::nullopt;
                progressed = true;
            }
            bool all_done = true;
            for (const std::string &unit : units)
                if (!claims_.isDone(unit))
                    all_done = false;
            if (all_done)
                break;
            if (!progressed)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
        }

        std::vector<SweepRecord> all;
        for (const std::string &unit : units) {
            const std::string path = claims_.path(unit + ".csv");
            std::ifstream is(path, std::ios::binary);
            if (!is) {
                if (err)
                    *err = "cannot read '" + path + "'";
                return std::nullopt;
            }
            std::string csv_err;
            const auto recs = readSweepCsv(is, &csv_err);
            if (!recs) {
                if (err)
                    *err = "'" + path + "': " + csv_err;
                return std::nullopt;
            }
            all.insert(all.end(), recs->begin(), recs->end());
        }
        std::sort(all.begin(), all.end(),
                  [](const SweepRecord &a, const SweepRecord &b) {
                      return a.cell < b.cell;
                  });
        bool covered = all.size() == cells.size();
        for (std::size_t i = 0; covered && i < all.size(); ++i)
            covered = all[i].cell == cells[i];
        if (!covered) {
            if (err)
                *err = "claim units of round " +
                       std::to_string(round) +
                       " do not cover its candidate set (foreign "
                       "or mismatched manifest directory?)";
            return std::nullopt;
        }
        return all;
    }

  private:
    TuneContext ctx_;
    unsigned jobs_;
    ClaimDir claims_;
    unsigned shards_;
};

/** One fully logged round recovered from a --resume decision log. */
struct CachedRound
{
    std::vector<std::size_t> cells;
    std::vector<SweepRecord> records;
};

/**
 * Recover the complete-round prefix of a prior decision log. The
 * plan line must match @p planLine byte-for-byte (same scenario,
 * same knobs); rounds are adopted only up to the first one missing
 * its verdict line, and each score line's embedded CSV row must
 * parse back to its cell. Returns false with @p err on a log that
 * belongs to a different scenario or is corrupt.
 */
/** Quarantine a damaged log and report a fresh start. @return true
 *  always (the resume degrades to "nothing cached"). */
bool
freshAfterQuarantine(const std::string &path, const std::string &why,
                     std::vector<CachedRound> &cached)
{
    const auto aside = quarantineCorruptFile(path);
    RC_LOG(warn, "--resume " + path + ": " + why + "; " +
                     (aside ? "moved aside to '" + *aside + "'"
                            : "could not move it aside") +
                     ", starting fresh");
    cached.clear();
    return true;
}

bool
loadCachedRounds(const std::string &path, const std::string &planLine,
                 std::vector<CachedRound> &cached, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true; // nothing to resume: fresh start
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string raw = buf.str();
    // A torn final line (no trailing newline) is a crashed writer's
    // last breath, not corruption: drop it, keep the prefix.
    if (!raw.empty() && raw.back() != '\n') {
        const std::size_t last_nl = raw.rfind('\n');
        raw.resize(last_nl == std::string::npos ? 0 : last_nl + 1);
        RC_LOG(warn, "--resume " + path + ": dropping torn final "
                                          "line (mid-write crash?)");
    }
    std::istringstream text(raw);
    std::string read_err;
    const auto lines = readDecisionLog(text, &read_err);
    if (!lines)
        return freshAfterQuarantine(path, read_err, cached);
    if (lines->empty())
        return true; // empty (or torn-to-empty) log: fresh start
    if ((*lines)[0].raw != planLine) {
        *err = "--resume " + path +
               ": plan line does not match this scenario";
        return false;
    }

    std::size_t i = 1;
    for (std::size_t r = 0; i < lines->size(); ++r) {
        const DecisionLogLine &rl = (*lines)[i];
        unsigned long long n = 0;
        if (rl.get("event") != "round" ||
            rl.get("round") != std::to_string(r) ||
            !parseU64Strict(rl.get("candidates"), n))
            break;
        ++i;

        CachedRound cr;
        bool scores_ok = true;
        for (std::uint64_t s = 0; s < n; ++s, ++i) {
            if (i >= lines->size() ||
                (*lines)[i].get("event") != "score" ||
                (*lines)[i].get("round") != std::to_string(r)) {
                scores_ok = false;
                break;
            }
            unsigned long long cell = 0;
            if (!parseU64Strict((*lines)[i].get("cell"), cell)) {
                scores_ok = false;
                break;
            }
            std::istringstream row_is(sweepCsvHeader() + "\n" +
                                      (*lines)[i].get("row") + "\n");
            std::string row_err;
            const auto row = readSweepCsv(row_is, &row_err);
            if (!row || row->size() != 1 ||
                (*row)[0].cell != cell)
                return freshAfterQuarantine(
                    path,
                    "line " + std::to_string(i + 1) +
                        ": corrupt score row",
                    cached);
            cr.cells.push_back(static_cast<std::size_t>(cell));
            cr.records.push_back((*row)[0]);
        }
        if (!scores_ok)
            break;

        // A round counts as cached only with its verdict line; a
        // log cut mid-round re-runs that round (same bytes either
        // way — everything is deterministic).
        if (i >= lines->size())
            break;
        const std::string ev = (*lines)[i].get("event");
        const bool round_matches =
            (*lines)[i].get("round") == std::to_string(r);
        if (ev == "promote" && round_matches) {
            ++i;
            cached.push_back(std::move(cr));
            continue;
        }
        if (ev == "early-exit" && round_matches &&
            i + 1 < lines->size() &&
            (*lines)[i + 1].get("event") == "winner") {
            cached.push_back(std::move(cr));
            break;
        }
        if (ev == "winner") {
            cached.push_back(std::move(cr));
            break;
        }
        break;
    }
    return true;
}

} // namespace

int
runAdaptiveSearch(const ParamSpace &space, const TuneOptions &opt,
                  TuneStats *stats)
{
    const ScenarioSpec &spec = space.spec();
    const AdaptiveSpec &ad = spec.search.adaptive;

    if (spec.search.mode != SearchMode::Adaptive)
        return fail("scenario '" + spec.name +
                    "' is not adaptive; add 'mode = adaptive' to "
                    "its [search] section");
    if (ad.ladder.empty())
        return fail("adaptive ladder is empty");
    for (const Axis &axis : spec.axes)
        if (axis.name == "sample.interval")
            return fail("adaptive search drives the engine ladder "
                        "itself; drop the sample.interval axis");
    if (!opt.resumePath.empty() && !opt.claimDir.empty())
        return fail("--resume and --claim are mutually exclusive "
                    "(claim directories resume themselves)");
    if (ad.sampleInterval) {
        const char *why = SamplingConfig::shapeError(
            ad.sampleInterval,
            SamplingConfig::defaultDetail(ad.sampleInterval),
            SamplingConfig::defaultWarmup(ad.sampleInterval));
        if (why)
            return fail(std::string("[search] sample-interval: ") +
                        why);
    }

    std::string apps_err;
    const std::vector<AppEntry> apps = resolveApps(spec, &apps_err);
    if (apps.empty())
        return fail(apps_err);
    const std::size_t npoints = space.numPoints();
    const std::size_t ncells = apps.size() * npoints;

    // Materialize the rung engines and hold every rung to the same
    // cross-cutting constraints the sweep enforces for its engine
    // (the analytic envelope, sampled-reachability, ...).
    std::vector<EngineSpec> rungs;
    for (const EngineMode mode : ad.ladder) {
        EngineSpec e;
        if (mode == EngineMode::Analytic)
            e = EngineSpec::makeAnalytic();
        else if (mode == EngineMode::Sampled)
            e = ad.sampleInterval == 0
                    ? EngineSpec::makeSampled(SamplingConfig{})
                    : EngineSpec::makeSampled(
                          ad.sampleInterval,
                          SamplingConfig::defaultDetail(
                              ad.sampleInterval),
                          SamplingConfig::defaultWarmup(
                              ad.sampleInterval));
        ScenarioSpec probe = spec;
        probe.engine = e;
        std::string probe_err;
        if (!ParamSpace::build(probe, &probe_err))
            return fail("ladder rung '" + engineName(mode) +
                        "': " + probe_err);
        rungs.push_back(e);
    }

    std::string ladder_tok, promote_tok;
    for (std::size_t i = 0; i < ad.ladder.size(); ++i)
        ladder_tok +=
            (i ? "," : "") + engineName(ad.ladder[i]);
    for (std::size_t i = 0; i < ad.promote.size(); ++i)
        promote_tok +=
            (i ? "," : "") + shortestDouble(ad.promote[i]);
    const std::string plan_line = tunePlanLine(
        spec.name, spec.insts, apps.size(), npoints, ncells,
        ladder_tok, promote_tok, ad.minSurvivors, ad.rankAgree,
        ad.sampleInterval);

    TuneContext ctx;
    ctx.space = &space;
    ctx.apps = &apps;
    ctx.insts = spec.insts;
    ctx.grid = spec.search.dynGrid;
    ctx.npoints = npoints;

    // ---- executor: local, or cooperative over a manifest dir
    std::unique_ptr<RoundExecutor> exec;
    if (!opt.claimDir.empty()) {
        std::string read_err;
        bool mf_corrupt = false;
        auto mf = readManifest(opt.claimDir, &read_err, &mf_corrupt);
        if (!mf) {
            if (opt.shards == 0)
                return fail(read_err);
            // A worker that carries the full spec (--shards set) can
            // recover a damaged manifest: move it aside, re-create.
            if (mf_corrupt) {
                std::string q_err;
                if (!quarantineManifest(opt.claimDir, &q_err))
                    return fail(read_err + "; " + q_err);
            }
            ManifestInfo info;
            info.mode = "tune";
            info.shards = opt.shards;
            info.scenarioText = spec.printToString();
            std::string write_err;
            if (writeManifest(opt.claimDir, info, &write_err)) {
                mf = info;
            } else {
                // Lost the creation race; join what the winner wrote.
                mf = readManifest(opt.claimDir, &read_err);
                if (!mf)
                    return fail(write_err);
            }
        }
        if (mf->mode != "tune")
            return fail("manifest in '" + opt.claimDir + "' is a " +
                        mf->mode + " manifest, not a tune");
        if (mf->scenarioText != spec.printToString())
            return fail("manifest in '" + opt.claimDir +
                        "' was created for a different scenario");
        if (opt.shards != 0 && opt.shards != mf->shards)
            return fail("--shards " + std::to_string(opt.shards) +
                        " does not match the manifest's " +
                        std::to_string(mf->shards));
        exec = std::make_unique<ClaimExecutor>(
            ctx, opt.jobs,
            ClaimDir(opt.claimDir, opt.leaseTimeoutSecs),
            mf->shards);
    } else {
        exec = std::make_unique<LocalExecutor>(ctx, opt.jobs);
    }

    // ---- resume: adopt the complete-round prefix of a prior log
    std::vector<CachedRound> cached;
    if (!opt.resumePath.empty()) {
        std::string resume_err;
        if (!loadCachedRounds(opt.resumePath, plan_line, cached,
                              &resume_err))
            return fail(resume_err);
    }

    // ---- decision log sink
    DecisionLogWriter log;
    if (!opt.logPath.empty() && opt.emitOutputs &&
        !log.open(opt.logPath))
        return fail("cannot write '" + opt.logPath + "'");
    const auto emit = [&](const std::string &line) {
        log.append(line);
    };
    emit(plan_line);

    // ---- cost accounting (plan arithmetic; see plannedRoundJobs)
    std::vector<std::size_t> all_cells(ncells);
    std::iota(all_cells.begin(), all_cells.end(), 0);
    const std::uint64_t exhaustive_insts =
        plannedRoundJobs(ctx, all_cells, spec.engine) *
        spec.engine.detailedInstsFor(spec.insts);

    // ---- successive halving over the ladder
    std::vector<std::size_t> candidates = all_cells;
    std::vector<std::size_t> prev_rank;
    std::uint64_t detailed_insts = 0;
    std::size_t rounds_run = 0;
    bool early = false;
    std::optional<SweepRecord> winner;
    std::string winner_score;

    for (std::size_t r = 0; r < rungs.size(); ++r) {
        // Round boundaries are the tuner's commit points: the log
        // holds only complete rounds here, so exiting now leaves a
        // --resume-able state.
        if (interruptRequested()) {
            std::cerr << "rcache-sim: interrupted; " << rounds_run
                      << " complete round(s) in the log";
            if (!opt.logPath.empty() && opt.emitOutputs)
                std::cerr << "; resume with --resume "
                          << opt.logPath;
            std::cerr << '\n';
            return interruptExitCode();
        }
        const EngineSpec &engine = rungs[r];
        emit(tuneRoundLine(r, engineName(ad.ladder[r]),
                           candidates.size()));
        detailed_insts += plannedRoundJobs(ctx, candidates, engine) *
                          engine.detailedInstsFor(spec.insts);

        std::vector<SweepRecord> records;
        if (r < cached.size()) {
            if (cached[r].cells != candidates)
                return fail("--resume " + opt.resumePath +
                            ": round " + std::to_string(r) +
                            " candidates do not match this "
                            "scenario's schedule");
            records = cached[r].records;
        } else {
            std::string exec_err;
            auto recs =
                exec->run(r, engine, candidates, &exec_err);
            if (!recs) {
                if (interruptRequested()) {
                    std::cerr << "rcache-sim: interrupted; claimed "
                                 "units are committed, rerun to "
                                 "continue\n";
                    return interruptExitCode();
                }
                return fail(exec_err);
            }
            records = std::move(*recs);
        }
        ++rounds_run;

        std::vector<double> score(records.size());
        std::vector<std::string> score_text(records.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
            score[i] = scoreOf(records[i]);
            score_text[i] = shortestDouble(score[i]);
            emit(tuneScoreLine(r, records[i].cell, score_text[i],
                               csvRowOf(records[i])));
        }

        std::vector<std::size_t> order(records.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (score[a] != score[b])
                          return score[a] < score[b];
                      return records[a].cell < records[b].cell;
                  });
        std::vector<std::size_t> rank;
        rank.reserve(order.size());
        for (const std::size_t o : order)
            rank.push_back(records[o].cell);

        const bool final_rung = r + 1 == rungs.size();
        if (!final_rung && ad.rankAgree > 0 && r > 0) {
            const std::size_t k = std::min<std::size_t>(
                ad.rankAgree,
                std::min(rank.size(), prev_rank.size()));
            bool agree = k > 0;
            for (std::size_t i = 0; agree && i < k; ++i)
                agree = rank[i] == prev_rank[i];
            if (agree) {
                emit(tuneEarlyExitLine(
                    r, {rank.begin(), rank.begin() + k}));
                early = true;
            }
        }

        if (final_rung || early) {
            winner = records[order[0]];
            winner_score = score_text[order[0]];
            emit(tuneWinnerLine(winner->cell, winner->app,
                                winner_score,
                                engineName(ad.ladder[r]),
                                rounds_run, detailed_insts,
                                exhaustive_insts));
            break;
        }

        const double frac = ad.promote[std::min<std::size_t>(
            r, ad.promote.size() - 1)];
        const std::size_t keep = std::min(
            rank.size(),
            std::max<std::size_t>(
                ad.minSurvivors,
                static_cast<std::size_t>(std::ceil(
                    frac * static_cast<double>(rank.size())))));
        emit(tunePromoteLine(r, rank, keep));
        candidates.assign(rank.begin(), rank.begin() + keep);
        std::sort(candidates.begin(), candidates.end());
        prev_rank = std::move(rank);
    }
    // The loop always breaks with a winner: the last rung takes the
    // final_rung branch unconditionally.
    rc_assert(winner);

    if (opt.emitOutputs) {
        std::ostringstream out;
        out << sweepCsvHeader() << '\n';
        writeSweepCsvRows(out, {*winner});
        if (opt.outPath.empty()) {
            checkedAppend(std::cout, out.str(), "<stdout>",
                          "tune.winner.write");
        } else {
            std::ofstream f(opt.outPath,
                            std::ios::binary | std::ios::trunc);
            if (!f)
                return fail("cannot write '" + opt.outPath + "'");
            checkedAppend(f, out.str(), opt.outPath,
                          "tune.winner.write");
        }
    }

    if (stats) {
        stats->cells = ncells;
        stats->rounds = rounds_run;
        stats->earlyExit = early;
        stats->detailedInsts = detailed_insts;
        stats->exhaustiveDetailedInsts = exhaustive_insts;
        stats->winner = *winner;
        stats->logText = log.text();
    }

    if (!opt.quiet) {
        std::cerr << "tune: winner cell " << winner->cell << " ("
                  << winner->app;
        if (!winner->axes.empty())
            std::cerr << ", " << winner->axes;
        std::cerr << "), relative E.D " << winner_score << ", "
                  << rounds_run << "/" << rungs.size() << " round(s)"
                  << (early ? " [early exit]" : "")
                  << ", detailed insts " << detailed_insts << " vs "
                  << exhaustive_insts << " exhaustive";
        if (detailed_insts > 0 && exhaustive_insts > 0)
            std::cerr << " ("
                      << shortestDouble(
                             static_cast<double>(exhaustive_insts) /
                             static_cast<double>(detailed_insts))
                      << "x less)";
        std::cerr << '\n';
    }
    return 0;
}

int
runAdaptiveSearch(const ScenarioSpec &spec, const TuneOptions &opt,
                  TuneStats *stats)
{
    std::string err;
    const auto space = ParamSpace::build(spec, &err);
    if (!space)
        return fail(err);
    return runAdaptiveSearch(*space, opt, stats);
}

} // namespace rcache
