/** @file Resize-decision event names and JSONL serialization. */

#include "telemetry/resize_events.hh"

#include <utility>

#include "util/logging.hh"
#include "util/numformat.hh"

namespace rcache
{

const char *resizeReasonName(ResizeReason reason)
{
    switch (reason) {
    case ResizeReason::grow:
        return "grow";
    case ResizeReason::growAtMax:
        return "grow-at-max";
    case ResizeReason::shrink:
        return "shrink";
    case ResizeReason::shrinkAtMin:
        return "shrink-at-min";
    case ResizeReason::shrinkSizeBound:
        return "shrink-size-bound";
    case ResizeReason::hold:
        return "hold";
    }
    rc_panic("unknown resize reason");
}

std::vector<ResizeEvent> ResizeEventRecorder::takeEvents()
{
    return std::exchange(events_, {});
}

void writeResizeEventsJsonl(std::ostream &os,
                            const std::vector<ResizeEvent> &events,
                            const std::string &label)
{
    for (const ResizeEvent &ev : events) {
        os << '{';
        if (!label.empty())
            os << "\"job\":\"" << label << "\",";
        os << "\"core\":" << ev.core
           << ",\"cache\":\"" << ev.cache << '"'
           << ",\"interval\":" << ev.interval
           << ",\"cycle\":" << ev.cycle
           << ",\"accesses\":" << ev.accesses
           << ",\"misses\":" << ev.misses
           << ",\"miss_bound\":" << ev.missBound
           << ",\"downsize_fraction\":"
           << shortestDouble(ev.downsizeFraction)
           << ",\"reason\":\"" << resizeReasonName(ev.reason) << '"'
           << ",\"from_level\":" << ev.fromLevel
           << ",\"to_level\":" << ev.toLevel
           << ",\"from_bytes\":" << ev.fromBytes
           << ",\"to_bytes\":" << ev.toBytes
           << ",\"flush_invalidated\":" << ev.flushInvalidated
           << ",\"flush_writebacks\":" << ev.flushWritebacks
           << ",\"transition_cycles\":" << ev.transitionCycles
           << "}\n";
    }
}

} // namespace rcache
