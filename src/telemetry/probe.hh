/**
 * @file
 * CoreProbe: the hook the timing/functional cores sample telemetry
 * through.
 *
 * A probe is attached to a core with setProbe(); the core then splits
 * its instruction drain into probe-interval chunks and calls
 * onSample() after each one. The split is invisible to the
 * simulation: Workload::nextBatch is exactly stream-equivalent under
 * any batching (workload/workload.hh), and all timing state lives in
 * run()-local variables that persist across chunks — so a probed run
 * retires the identical instruction stream with identical timing,
 * cycle for cycle. With no probe attached the cores execute a single
 * unchunked drain, today's exact code path; the only cost of the
 * feature when disabled is one branch per run() call.
 */

#ifndef RCACHE_TELEMETRY_PROBE_HH
#define RCACHE_TELEMETRY_PROBE_HH

#include <cstdint>

#include "energy/energy_model.hh"

namespace rcache
{

/** See file comment. */
class CoreProbe
{
  public:
    virtual ~CoreProbe() = default;

    /** Instructions between samples (> 0). */
    virtual std::uint64_t sampleInterval() const = 0;

    /**
     * One timing-core sample. All values are relative to the current
     * run() window (multi-core quanta and sampled detailed windows
     * each open a fresh window at cycle 0); the probe detects window
     * turnover by @p window_insts not increasing.
     *
     * @param window_insts instructions retired in this window so far
     * @param window_cycle current cycle within this window
     * @param window_activity event counts of this window so far
     *        (the cycles field is not yet final; use @p window_cycle)
     */
    virtual void onSample(std::uint64_t window_insts,
                          std::uint64_t window_cycle,
                          const CoreActivity &window_activity) = 0;

    /**
     * One FunctionalCore (warmup) sample: state advanced with no
     * timing. @p window_insts counts this warmup window's
     * instructions.
     */
    virtual void onWarmupSample(std::uint64_t window_insts) = 0;
};

} // namespace rcache

#endif // RCACHE_TELEMETRY_PROBE_HH
