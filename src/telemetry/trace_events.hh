/**
 * @file
 * Chrome trace-event recording for the sweep runner.
 *
 * Produces the JSON object format understood by chrome://tracing and
 * Perfetto: {"traceEvents": [...]}. Spans are complete events
 * (ph "X") with microsecond timestamps relative to the recorder's
 * creation; markers are instant events (ph "i"). Thread ids are
 * small integers assigned in order of first appearance, so worker
 * rows in the viewer are stable and compact.
 *
 * Timestamps come from std::chrono::steady_clock — they describe the
 * *host's* execution, not simulated time, and are inherently
 * nondeterministic. Tests therefore validate structure, never bytes.
 *
 * Thread safety: record()/instant() may be called concurrently from
 * pool workers; write() must be called after the pool has quiesced.
 */

#ifndef RCACHE_TELEMETRY_TRACE_EVENTS_HH
#define RCACHE_TELEMETRY_TRACE_EVENTS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace rcache
{

/** See file comment. */
class TraceEventRecorder
{
  public:
    using Clock = std::chrono::steady_clock;
    /** String key/value pairs for the event's "args" object. */
    using Args = std::vector<std::pair<std::string, std::string>>;

    TraceEventRecorder() : t0_(Clock::now()) {}

    /** Current time, for bracketing a span by hand. */
    Clock::time_point now() const { return Clock::now(); }

    /** Record a complete span [begin, end) on the calling thread. */
    void completeSpan(const std::string &name, Clock::time_point begin,
                      Clock::time_point end, Args args = {});

    /** Record an instant marker at the current time. */
    void instant(const std::string &name, Args args = {});

    std::size_t size() const;

    /** Serialize everything as a Chrome trace JSON object. */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        std::string name;
        char phase; // 'X' or 'i'
        std::int64_t tsMicros;
        std::int64_t durMicros; // spans only
        int tid;
        Args args;
    };

    std::int64_t micros(Clock::time_point t) const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   t - t0_)
            .count();
    }

    int tidOfCurrentThread(); // callers hold mu_

    Clock::time_point t0_;
    mutable std::mutex mu_;
    std::map<std::thread::id, int> tids_;
    std::vector<Event> events_;
};

} // namespace rcache

#endif // RCACHE_TELEMETRY_TRACE_EVENTS_HH
