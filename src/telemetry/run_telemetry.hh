/**
 * @file
 * Per-run telemetry request/result bundle.
 *
 * A RunTelemetry is passed (as a nullable pointer — null means
 * telemetry off and zero wiring cost) into System::run /
 * MultiCoreSystem::run / executeRunJob. The caller sets the request
 * fields; the run appends its timeline rows and resize events, and
 * the caller serializes them wherever it likes (stdout, per-run
 * files, a shared sweep sidecar).
 */

#ifndef RCACHE_TELEMETRY_RUN_TELEMETRY_HH
#define RCACHE_TELEMETRY_RUN_TELEMETRY_HH

#include <cstdint>
#include <vector>

#include "telemetry/resize_events.hh"
#include "telemetry/timeline.hh"

namespace rcache
{

/** See file comment. */
struct RunTelemetry
{
    /** Sample every N instructions; 0 disables the timeline. */
    std::uint64_t timelineInterval = 0;
    /** Record resize-decision events from dynamic controllers. */
    bool resizeEvents = false;

    /** Timeline rows, per core in core order (multi-core). */
    std::vector<TimelineRow> timeline;
    /** Resize-decision events in emission order. */
    ResizeEventRecorder events;

    bool wantsTimeline() const { return timelineInterval > 0; }
    bool enabled() const { return wantsTimeline() || resizeEvents; }
};

} // namespace rcache

#endif // RCACHE_TELEMETRY_RUN_TELEMETRY_HH
