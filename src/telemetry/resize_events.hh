/**
 * @file
 * Structured resize-decision events.
 *
 * Every interval boundary of a dynamic resizing controller produces
 * exactly one event capturing the decision inputs (interval miss
 * count vs. the configured bounds), the outcome (grow / shrink /
 * hold, with a reason code distinguishing "wanted to move but
 * couldn't"), and the transition cost (lines invalidated, dirty
 * writebacks flushed, and the cycles those writebacks occupy the
 * drain port). This makes the paper's mechanism inspectable per
 * decision instead of only through end-of-run aggregates.
 *
 * This header is plain data + a recorder; it deliberately has no
 * dependency on the controller or cache classes so both the
 * controllers and the offline inspect tooling can include it.
 */

#ifndef RCACHE_TELEMETRY_RESIZE_EVENTS_HH
#define RCACHE_TELEMETRY_RESIZE_EVENTS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rcache
{

/** Outcome of one interval-boundary resize decision. */
enum class ResizeReason
{
    /** Misses exceeded the bound; the cache grew one level. */
    grow,
    /** Misses exceeded the bound but the cache is already at its
     *  largest configuration. */
    growAtMax,
    /** Misses fell below bound × downsize-fraction; the cache shrank
     *  one level. */
    shrink,
    /** Wanted to shrink but already at the smallest configuration. */
    shrinkAtMin,
    /** Wanted to shrink but the size-bound forbids going smaller. */
    shrinkSizeBound,
    /** Miss count between the two thresholds; no change. */
    hold,
};

/** Stable lowercase-hyphen name used in the JSONL output. */
const char *resizeReasonName(ResizeReason reason);

/** One interval-boundary decision. */
struct ResizeEvent
{
    /** Core the resized cache belongs to (0 in single-core runs). */
    unsigned core = 0;
    /** Cache name, e.g. "dl1". */
    std::string cache;
    /** Decision ordinal for this controller (1 = first boundary). */
    std::uint64_t interval = 0;
    /**
     * Cycle of the access that closed the interval, local to the
     * run() window it occurred in (multi-core quanta and sampled
     * detailed windows restart at cycle 0; the controller cannot see
     * across windows). Use @ref interval for a monotonic axis.
     */
    std::uint64_t cycle = 0;
    /** Accesses observed in the interval. */
    std::uint64_t accesses = 0;
    /** Misses observed in the interval (the decision input). */
    std::uint64_t misses = 0;
    /** Configured miss bound the interval is judged against. */
    std::uint64_t missBound = 0;
    /** Configured downsize fraction (shrink threshold multiplier). */
    double downsizeFraction = 1.0;

    ResizeReason reason = ResizeReason::hold;

    /** Size level before/after (0 = largest configuration). */
    unsigned fromLevel = 0;
    unsigned toLevel = 0;
    /** Enabled capacity in bytes before/after. */
    std::uint64_t fromBytes = 0;
    std::uint64_t toBytes = 0;

    /** Lines invalidated by the transition flush (0 on hold). */
    std::uint64_t flushInvalidated = 0;
    /** Dirty lines written back by the transition flush. */
    std::uint64_t flushWritebacks = 0;
    /** Drain-port cycles consumed by the writeback burst. */
    std::uint64_t transitionCycles = 0;

    bool resized() const { return fromLevel != toLevel; }
};

/** Accumulates events from any number of controllers in one run. */
class ResizeEventRecorder
{
  public:
    void record(const ResizeEvent &ev) { events_.push_back(ev); }

    const std::vector<ResizeEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

    /** Move the accumulated events out (recorder ends up empty). */
    std::vector<ResizeEvent> takeEvents();

  private:
    std::vector<ResizeEvent> events_;
};

/**
 * Everything a controller needs to emit events: the recorder (null =
 * telemetry off, and the controller must stay on its untouched fast
 * path), the owning core id, and the per-writeback drain latency used
 * to price transition bursts in cycles.
 */
struct ResizeTelemetry
{
    ResizeEventRecorder *recorder = nullptr;
    unsigned core = 0;
    std::uint64_t drainCyclesPerWriteback = 0;
};

/**
 * Append @p events to @p os as JSONL, one compact object per line,
 * deterministic bytes (locale-free number formatting). @p label, when
 * non-empty, is added as a "job" field on every line so sweep outputs
 * from many design points can share one file.
 */
void writeResizeEventsJsonl(std::ostream &os,
                            const std::vector<ResizeEvent> &events,
                            const std::string &label = "");

} // namespace rcache

#endif // RCACHE_TELEMETRY_RESIZE_EVENTS_HH
