/** @file Chrome trace-event recording and serialization. */

#include "telemetry/trace_events.hh"

namespace rcache
{
namespace
{

/** Minimal JSON string escape (quotes, backslashes, control chars). */
void writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

int TraceEventRecorder::tidOfCurrentThread()
{
    const auto id = std::this_thread::get_id();
    auto it = tids_.find(id);
    if (it == tids_.end())
        it = tids_.emplace(id, static_cast<int>(tids_.size())).first;
    return it->second;
}

void TraceEventRecorder::completeSpan(const std::string &name,
                                      Clock::time_point begin,
                                      Clock::time_point end, Args args)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(Event{name, 'X', micros(begin),
                            micros(end) - micros(begin),
                            tidOfCurrentThread(), std::move(args)});
}

void TraceEventRecorder::instant(const std::string &name, Args args)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(Event{name, 'i', micros(Clock::now()), 0,
                            tidOfCurrentThread(), std::move(args)});
}

std::size_t TraceEventRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void TraceEventRecorder::write(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Event &ev : events_) {
        if (!first)
            os << ',';
        first = false;
        os << "\n{\"name\":";
        writeJsonString(os, ev.name);
        os << ",\"ph\":\"" << ev.phase << '"'
           << ",\"ts\":" << ev.tsMicros;
        if (ev.phase == 'X')
            os << ",\"dur\":" << ev.durMicros;
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
        os << ",\"pid\":0,\"tid\":" << ev.tid;
        if (!ev.args.empty()) {
            os << ",\"args\":{";
            bool firstArg = true;
            for (const auto &[key, value] : ev.args) {
                if (!firstArg)
                    os << ',';
                firstArg = false;
                writeJsonString(os, key);
                os << ':';
                writeJsonString(os, value);
            }
            os << '}';
        }
        os << '}';
    }
    os << "\n]}\n";
}

} // namespace rcache
