/**
 * @file
 * Offline summarization of telemetry artifacts: the engine behind
 * `rcache-sim inspect`. Reads the JSONL files written by the
 * timeline/resize-event layers (no third-party JSON dependency — the
 * lines are flat objects, parsed by a small strict parser here) and
 * reduces them to the questions the paper's mechanism raises: how
 * often did the controller grow/shrink/hold and why, what sizes did
 * the cache live at, and did the decision thresholds oscillate.
 */

#ifndef RCACHE_TELEMETRY_INSPECT_HH
#define RCACHE_TELEMETRY_INSPECT_HH

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>

namespace rcache
{

/**
 * Strict parse of one flat JSON object line ({"k":v,...}, scalar
 * values only). String values land unescaped in @p out; numbers and
 * booleans land as their literal text.
 * @return false (with @p err set) on malformed input
 */
bool parseJsonFlatObject(const std::string &line,
                         std::map<std::string, std::string> &out,
                         std::string *err = nullptr);

/** Reduction of a timeline JSONL file. */
struct TimelineSummary
{
    std::uint64_t rows = 0;
    std::uint64_t warmupRows = 0;
    /** Highest core id seen + 1. */
    unsigned cores = 0;
    std::uint64_t maxInsts = 0;
    std::uint64_t maxCycles = 0;
    /** Arithmetic mean of detail-row interval IPCs. */
    double meanIpc = 0;
    /** D-cache size residency: enabled bytes → timed cycles spent
     *  there (per-core cycle deltas attributed to the row's size). */
    std::map<std::uint64_t, std::uint64_t> dl1SizeCycles;
};

/** Reduction of a resize-event JSONL file. */
struct EventsSummary
{
    std::uint64_t events = 0;
    /** Decision counts keyed by reason-code name. */
    std::map<std::string, std::uint64_t> byReason;
    /** Size residency: enabled bytes → controller intervals spent
     *  there (elapsed intervals attributed to the pre-event size). */
    std::map<std::uint64_t, std::uint64_t> sizeIntervals;
    /** Direction reversals (grow→shrink or shrink→grow on the same
     *  core+cache) within the oscillation window, a thrashing
     *  controller's signature. */
    std::uint64_t oscillations = 0;
    std::uint64_t totalFlushWritebacks = 0;
    std::uint64_t totalTransitionCycles = 0;
};

/**
 * Summarize timeline JSONL from @p in.
 * @throws std::runtime_error on a malformed line
 */
TimelineSummary summarizeTimeline(std::istream &in);

/**
 * Summarize resize-event JSONL from @p in.
 * @param oscillation_window max interval distance between two
 *        opposite-direction resizes for them to count as an
 *        oscillation
 * @throws std::runtime_error on a malformed line
 */
EventsSummary summarizeEvents(std::istream &in,
                              std::uint64_t oscillation_window = 3);

void printTimelineSummary(std::ostream &os, const TimelineSummary &s);
void printEventsSummary(std::ostream &os, const EventsSummary &s);

} // namespace rcache

#endif // RCACHE_TELEMETRY_INSPECT_HH
