/** @file TimelineRecorder sampling logic and row serialization. */

#include "telemetry/timeline.hh"

#include <utility>

#include "util/numformat.hh"

namespace rcache
{

TimelineRecorder::TimelineRecorder(const TimelineSources &sources,
                                   std::uint64_t interval)
    : src_(sources), interval_(interval ? interval : 1),
      energyModel_(sources.energy ? *sources.energy : EnergyParams{})
{
    // Baseline snapshots: the attached caches may carry counts from
    // before this recorder existed; start the first interval here.
    lastIl1_ = CacheActivity::of(*src_.il1);
    lastDl1_ = CacheActivity::of(*src_.dl1);
    lastL2Accesses_ = src_.l2Accesses ? src_.l2Accesses() : 0;
    lastL2Misses_ = src_.l2Misses ? src_.l2Misses() : 0;
    lastMem_ = src_.memAccesses ? src_.memAccesses() : 0;
}

std::vector<TimelineRow> TimelineRecorder::takeRows()
{
    return std::exchange(rows_, {});
}

void TimelineRecorder::closeWarmupWindow()
{
    if (!warmupOpen_)
        return;
    cumInsts_ += lastWarmupInsts_;
    warmupOpen_ = false;
    lastWarmupInsts_ = 0;
}

/**
 * Shared per-sample capture: interval cache/L2/memory deltas (the
 * snapshots advance as a side effect, and come back via @p deltas for
 * the energy computation), current enabled geometry, and the row
 * skeleton. The returned deltas' byteCycles fields are stale — see
 * onSample for how interval byte-cycles are approximated.
 */
TimelineRow TimelineRecorder::baseRow(const char *phase,
                                      IntervalCaches &deltas)
{
    TimelineRow row;
    row.core = src_.core;
    row.seq = seq_++;
    row.phase = phase;

    const CacheActivity il1_now = CacheActivity::of(*src_.il1);
    const CacheActivity dl1_now = CacheActivity::of(*src_.dl1);
    deltas.il1 = il1_now - lastIl1_;
    deltas.dl1 = dl1_now - lastDl1_;
    row.il1MissRate = deltas.il1.missRatio();
    row.dl1MissRate = deltas.dl1.missRatio();
    lastIl1_ = il1_now;
    lastDl1_ = dl1_now;

    const std::uint64_t l2a = src_.l2Accesses ? src_.l2Accesses() : 0;
    const std::uint64_t l2m = src_.l2Misses ? src_.l2Misses() : 0;
    deltas.l2Accesses = l2a - lastL2Accesses_;
    row.l2MissRate =
        deltas.l2Accesses
            ? static_cast<double>(l2m - lastL2Misses_) /
                  deltas.l2Accesses
            : 0.0;
    lastL2Accesses_ = l2a;
    lastL2Misses_ = l2m;

    const std::uint64_t mem = src_.memAccesses ? src_.memAccesses() : 0;
    deltas.mem = mem - lastMem_;
    lastMem_ = mem;

    row.il1Ways = src_.il1->enabledWays();
    row.il1Sets = src_.il1->enabledSets();
    row.il1Bytes = src_.il1->enabledSize();
    row.dl1Ways = src_.dl1->enabledWays();
    row.dl1Sets = src_.dl1->enabledSets();
    row.dl1Bytes = src_.dl1->enabledSize();
    return row;
}

void TimelineRecorder::onWarmupSample(std::uint64_t window_insts)
{
    // A warmup sample means any open detail window is finished.
    if (detailOpen_) {
        cumInsts_ += lastDetailInsts_;
        cumCycles_ += lastDetailCycle_;
        detailOpen_ = false;
        lastDetailInsts_ = 0;
        lastDetailCycle_ = 0;
        lastDetailActivity_ = CoreActivity{};
    }
    // A non-increasing count means a new warmup window began.
    if (warmupOpen_ && window_insts <= lastWarmupInsts_)
        closeWarmupWindow();

    // Snapshots still advance across warmup, else the first detail
    // interval would absorb the warmup's cache traffic.
    IntervalCaches deltas;
    TimelineRow row = baseRow("warmup", deltas);
    row.insts = cumInsts_ + window_insts;
    row.cycles = cumCycles_;
    rows_.push_back(std::move(row));

    warmupOpen_ = true;
    lastWarmupInsts_ = window_insts;
}

void TimelineRecorder::onSample(std::uint64_t window_insts,
                                std::uint64_t window_cycle,
                                const CoreActivity &window_activity)
{
    closeWarmupWindow();
    if (detailOpen_ && window_insts <= lastDetailInsts_) {
        // New detail window (multi-core quantum / sampled window).
        cumInsts_ += lastDetailInsts_;
        cumCycles_ += lastDetailCycle_;
        detailOpen_ = false;
        lastDetailInsts_ = 0;
        lastDetailCycle_ = 0;
        lastDetailActivity_ = CoreActivity{};
    }

    const std::uint64_t d_insts = window_insts - lastDetailInsts_;
    const std::uint64_t d_cycles = window_cycle - lastDetailCycle_;

    CoreActivity interval;
    interval.outOfOrder = window_activity.outOfOrder;
    interval.insts = d_insts;
    interval.cycles = d_cycles;
    interval.intOps =
        window_activity.intOps - lastDetailActivity_.intOps;
    interval.fpOps = window_activity.fpOps - lastDetailActivity_.fpOps;
    interval.loads = window_activity.loads - lastDetailActivity_.loads;
    interval.stores =
        window_activity.stores - lastDetailActivity_.stores;
    interval.branches =
        window_activity.branches - lastDetailActivity_.branches;
    interval.mispredicts =
        window_activity.mispredicts - lastDetailActivity_.mispredicts;

    IntervalCaches deltas;
    TimelineRow row = baseRow("detail", deltas);
    row.insts = cumInsts_ + window_insts;
    row.cycles = cumCycles_ + window_cycle;
    row.ipc =
        d_cycles ? static_cast<double>(d_insts) / d_cycles : 0.0;
    if (src_.timingCore) {
        row.mshrBusy = src_.timingCore->mshrs().busyAt(window_cycle);
        row.wbBusy =
            src_.timingCore->writebackBuffer().busyAt(window_cycle);
    }

    if (src_.energy) {
        // Interval byte-cycles approximated as enabled-size-at-sample
        // × interval cycles (exact when the interval saw no resize).
        // Reading the true integral would require
        // Cache::accumulateEnabledTime, which mutates byteCycles_'s
        // double-summation order and thus end-of-run energy bytes.
        deltas.il1.byteCycles =
            static_cast<double>(src_.il1->enabledSize()) * d_cycles;
        deltas.dl1.byteCycles =
            static_cast<double>(src_.dl1->enabledSize()) * d_cycles;
        row.energy = energyModel_
                         .compute(interval, deltas.il1,
                                  src_.il1ExtraTagBits, deltas.dl1,
                                  src_.dl1ExtraTagBits,
                                  static_cast<double>(deltas.l2Accesses),
                                  src_.l2SizeBytes,
                                  static_cast<double>(deltas.mem))
                         .total();
    }

    rows_.push_back(std::move(row));

    detailOpen_ = true;
    lastDetailInsts_ = window_insts;
    lastDetailCycle_ = window_cycle;
    lastDetailActivity_ = window_activity;
}

void writeTimelineJsonl(std::ostream &os,
                        const std::vector<TimelineRow> &rows,
                        const std::string &label)
{
    for (const TimelineRow &r : rows) {
        os << '{';
        if (!label.empty())
            os << "\"job\":\"" << label << "\",";
        os << "\"core\":" << r.core << ",\"seq\":" << r.seq
           << ",\"phase\":\"" << r.phase << '"'
           << ",\"insts\":" << r.insts << ",\"cycles\":" << r.cycles
           << ",\"ipc\":" << shortestDouble(r.ipc)
           << ",\"il1_miss_rate\":" << shortestDouble(r.il1MissRate)
           << ",\"dl1_miss_rate\":" << shortestDouble(r.dl1MissRate)
           << ",\"l2_miss_rate\":" << shortestDouble(r.l2MissRate)
           << ",\"il1_ways\":" << r.il1Ways
           << ",\"il1_sets\":" << r.il1Sets
           << ",\"il1_bytes\":" << r.il1Bytes
           << ",\"dl1_ways\":" << r.dl1Ways
           << ",\"dl1_sets\":" << r.dl1Sets
           << ",\"dl1_bytes\":" << r.dl1Bytes
           << ",\"mshr_busy\":" << r.mshrBusy
           << ",\"wb_busy\":" << r.wbBusy
           << ",\"energy\":" << shortestDouble(r.energy) << "}\n";
    }
}

void writeTimelineCsvHeader(std::ostream &os, bool with_label)
{
    if (with_label)
        os << "job,";
    os << "core,seq,phase,insts,cycles,ipc,il1_miss_rate,"
          "dl1_miss_rate,l2_miss_rate,il1_ways,il1_sets,il1_bytes,"
          "dl1_ways,dl1_sets,dl1_bytes,mshr_busy,wb_busy,energy\n";
}

void writeTimelineCsv(std::ostream &os,
                      const std::vector<TimelineRow> &rows,
                      const std::string &label, bool with_label)
{
    for (const TimelineRow &r : rows) {
        if (with_label)
            os << label << ',';
        os << r.core << ',' << r.seq << ',' << r.phase << ','
           << r.insts << ',' << r.cycles << ','
           << shortestDouble(r.ipc) << ','
           << shortestDouble(r.il1MissRate) << ','
           << shortestDouble(r.dl1MissRate) << ','
           << shortestDouble(r.l2MissRate) << ','
           << r.il1Ways << ',' << r.il1Sets << ',' << r.il1Bytes << ','
           << r.dl1Ways << ',' << r.dl1Sets << ',' << r.dl1Bytes << ','
           << r.mshrBusy << ',' << r.wbBusy << ','
           << shortestDouble(r.energy) << '\n';
    }
}

} // namespace rcache
