/**
 * @file
 * Interval timelines: periodic samples of IPC, miss rates, enabled
 * cache geometry, MSHR/writeback occupancy, and interval energy.
 *
 * A TimelineRecorder is a CoreProbe: attach it to a timing core (and,
 * in sampled runs, the functional warmup core) and it emits one
 * TimelineRow every sampleInterval() instructions. The recorder only
 * *reads* simulation state — cache counters, pool occupancy, the
 * core's live activity struct — and keeps private snapshots to
 * difference against, so attaching it cannot perturb results. In
 * particular it never calls Cache::accumulateEnabledTime (that would
 * reorder the byteCycles_ double summation and change end-of-run
 * energy in the last bits); interval byte-cycles are instead
 * approximated recorder-side as enabledSize-at-sample × cycle-delta,
 * exact whenever the interval contains no resize.
 */

#ifndef RCACHE_TELEMETRY_TIMELINE_HH
#define RCACHE_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "energy/energy_model.hh"
#include "telemetry/probe.hh"

namespace rcache
{

/** One timeline sample. Cumulative fields span the whole run
 *  (including warmup); rate fields cover only the sampling interval
 *  that ends at this row. */
struct TimelineRow
{
    unsigned core = 0;
    /** Row ordinal for this core (0 = first sample). */
    std::uint64_t seq = 0;
    /** "detail" (timed execution) or "warmup" (functional). */
    std::string phase;
    /** Instructions retired since the start of the run. */
    std::uint64_t insts = 0;
    /** Timed cycles since the start of the run (warmup adds none). */
    std::uint64_t cycles = 0;
    /** Interval IPC (0 for warmup rows). */
    double ipc = 0;
    double il1MissRate = 0;
    double dl1MissRate = 0;
    double l2MissRate = 0;
    unsigned il1Ways = 0;
    std::uint64_t il1Sets = 0;
    std::uint64_t il1Bytes = 0;
    unsigned dl1Ways = 0;
    std::uint64_t dl1Sets = 0;
    std::uint64_t dl1Bytes = 0;
    /** MSHR / writeback-buffer slots busy at the sample cycle
     *  (0 for warmup rows). */
    unsigned mshrBusy = 0;
    unsigned wbBusy = 0;
    /** Interval energy in joules (0 for warmup rows). */
    double energy = 0;
};

/**
 * Read-only taps into one core's slice of the system. The getter
 * std::functions decouple the recorder from whether the L2 is private
 * (single core: whole-cache counters) or shared (multi-core: the
 * per-core attribution the shared L2 keeps).
 */
struct TimelineSources
{
    unsigned core = 0;
    const Cache *il1 = nullptr;
    const Cache *dl1 = nullptr;
    unsigned il1ExtraTagBits = 0;
    unsigned dl1ExtraTagBits = 0;
    std::function<std::uint64_t()> l2Accesses;
    std::function<std::uint64_t()> l2Misses;
    std::function<std::uint64_t()> memAccesses;
    std::uint64_t l2SizeBytes = 0;
    /** Timing core, for MSHR / writeback occupancy. */
    const Core *timingCore = nullptr;
    const EnergyParams *energy = nullptr;
};

/**
 * Accumulates TimelineRows for one core. Window bookkeeping: cores
 * report instructions/cycles relative to the current run() window
 * (multi-core quanta, sampled detailed windows), so the recorder
 * detects window turnover — a warmup sample after detail samples, or
 * a detail sample whose instruction count did not increase — and
 * folds the finished window into its cumulative bases. This is exact
 * because every window's final sample fires at its last instruction.
 */
class TimelineRecorder final : public CoreProbe
{
  public:
    TimelineRecorder(const TimelineSources &sources,
                     std::uint64_t interval);

    std::uint64_t sampleInterval() const override { return interval_; }
    void onSample(std::uint64_t window_insts, std::uint64_t window_cycle,
                  const CoreActivity &window_activity) override;
    void onWarmupSample(std::uint64_t window_insts) override;

    const std::vector<TimelineRow> &rows() const { return rows_; }

    /** Move the accumulated rows out (recorder ends up empty but
     *  keeps its snapshots, so recording can continue). */
    std::vector<TimelineRow> takeRows();

  private:
    TimelineSources src_;
    std::uint64_t interval_;
    ProcessorEnergyModel energyModel_;

    std::vector<TimelineRow> rows_;
    std::uint64_t seq_ = 0;

    /** Completed-window totals. */
    std::uint64_t cumInsts_ = 0;
    std::uint64_t cumCycles_ = 0;

    /** Open detail window (values as of its latest sample). */
    bool detailOpen_ = false;
    std::uint64_t lastDetailInsts_ = 0;
    std::uint64_t lastDetailCycle_ = 0;
    CoreActivity lastDetailActivity_;

    /** Open warmup window. */
    bool warmupOpen_ = false;
    std::uint64_t lastWarmupInsts_ = 0;

    /** Counter snapshots from the previous sample of any kind. */
    CacheActivity lastIl1_;
    CacheActivity lastDl1_;
    std::uint64_t lastL2Accesses_ = 0;
    std::uint64_t lastL2Misses_ = 0;
    std::uint64_t lastMem_ = 0;

    /** Interval counter deltas captured alongside a row. */
    struct IntervalCaches
    {
        CacheActivity il1;
        CacheActivity dl1;
        std::uint64_t l2Accesses = 0;
        std::uint64_t mem = 0;
    };

    void closeWarmupWindow();
    TimelineRow baseRow(const char *phase, IntervalCaches &deltas);
};

/**
 * Append @p rows to @p os as JSONL, deterministic bytes. @p label,
 * when non-empty, becomes a "job" field on every line (sweeps share
 * one file across design points).
 */
void writeTimelineJsonl(std::ostream &os,
                        const std::vector<TimelineRow> &rows,
                        const std::string &label = "");

/** CSV header for writeTimelineCsv (includes the job column iff
 *  @p with_label). */
void writeTimelineCsvHeader(std::ostream &os, bool with_label);

/** Append @p rows as CSV (no header; see writeTimelineCsvHeader). */
void writeTimelineCsv(std::ostream &os,
                      const std::vector<TimelineRow> &rows,
                      const std::string &label = "",
                      bool with_label = false);

} // namespace rcache

#endif // RCACHE_TELEMETRY_TIMELINE_HH
