/** @file Telemetry-file summarization (the `inspect` subcommand). */

#include "telemetry/inspect.hh"

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/numformat.hh"

namespace rcache
{
namespace
{

bool failParse(std::string *err, const std::string &message)
{
    if (err)
        *err = message;
    return false;
}

/** Skip ASCII whitespace from @p pos. */
void skipSpace(const std::string &s, std::size_t &pos)
{
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\r'))
        ++pos;
}

/** Parse a JSON string literal at @p pos (expects the opening '"'). */
bool parseString(const std::string &s, std::size_t &pos,
                 std::string &out, std::string *err)
{
    if (pos >= s.size() || s[pos] != '"')
        return failParse(err, "expected '\"'");
    ++pos;
    out.clear();
    while (pos < s.size() && s[pos] != '"') {
        char c = s[pos++];
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (pos >= s.size())
            return failParse(err, "dangling escape");
        const char esc = s[pos++];
        switch (esc) {
        case '"':
        case '\\':
        case '/':
            out.push_back(esc);
            break;
        case 'n':
            out.push_back('\n');
            break;
        case 't':
            out.push_back('\t');
            break;
        case 'r':
            out.push_back('\r');
            break;
        case 'u': {
            // Telemetry writers only emit \u00XX control escapes.
            if (pos + 4 > s.size())
                return failParse(err, "short \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
                const char h = s[pos++];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    v |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return failParse(err, "bad \\u escape");
            }
            if (v > 0x7f)
                return failParse(err, "non-ASCII \\u escape");
            out.push_back(static_cast<char>(v));
            break;
        }
        default:
            return failParse(err, "unknown escape");
        }
    }
    if (pos >= s.size())
        return failParse(err, "unterminated string");
    ++pos; // closing quote
    return true;
}

/** Parse a number / true / false / null literal as raw text. */
bool parseLiteral(const std::string &s, std::size_t &pos,
                  std::string &out, std::string *err)
{
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] != ',' && s[pos] != '}' &&
           s[pos] != ' ' && s[pos] != '\t')
        ++pos;
    if (pos == start)
        return failParse(err, "expected a value");
    out = s.substr(start, pos - start);
    return true;
}

std::uint64_t getU64(const std::map<std::string, std::string> &obj,
                     const std::string &key)
{
    const auto it = obj.find(key);
    if (it == obj.end())
        throw std::runtime_error("missing field: " + key);
    unsigned long long v = 0;
    if (!parseU64Strict(it->second, v))
        throw std::runtime_error("bad integer in field: " + key);
    return v;
}

double getDouble(const std::map<std::string, std::string> &obj,
                 const std::string &key)
{
    const auto it = obj.find(key);
    if (it == obj.end())
        throw std::runtime_error("missing field: " + key);
    double v = 0;
    if (!parseDoubleStrict(it->second, v))
        throw std::runtime_error("bad number in field: " + key);
    return v;
}

std::string getString(const std::map<std::string, std::string> &obj,
                      const std::string &key)
{
    const auto it = obj.find(key);
    if (it == obj.end())
        throw std::runtime_error("missing field: " + key);
    return it->second;
}

std::map<std::string, std::string>
parseLineOrThrow(const std::string &line, std::uint64_t line_no)
{
    std::map<std::string, std::string> obj;
    std::string err;
    if (!parseJsonFlatObject(line, obj, &err))
        throw std::runtime_error("line " + std::to_string(line_no) +
                                 ": " + err);
    return obj;
}

} // namespace

bool parseJsonFlatObject(const std::string &line,
                         std::map<std::string, std::string> &out,
                         std::string *err)
{
    out.clear();
    std::size_t pos = 0;
    skipSpace(line, pos);
    if (pos >= line.size() || line[pos] != '{')
        return failParse(err, "expected '{'");
    ++pos;
    skipSpace(line, pos);
    if (pos < line.size() && line[pos] == '}') {
        ++pos;
    } else {
        for (;;) {
            skipSpace(line, pos);
            std::string key;
            if (!parseString(line, pos, key, err))
                return false;
            skipSpace(line, pos);
            if (pos >= line.size() || line[pos] != ':')
                return failParse(err, "expected ':'");
            ++pos;
            skipSpace(line, pos);
            std::string value;
            if (pos < line.size() && line[pos] == '"') {
                if (!parseString(line, pos, value, err))
                    return false;
            } else if (pos < line.size() &&
                       (line[pos] == '{' || line[pos] == '[')) {
                return failParse(err, "nested values not supported");
            } else if (!parseLiteral(line, pos, value, err)) {
                return false;
            }
            out[key] = value;
            skipSpace(line, pos);
            if (pos < line.size() && line[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < line.size() && line[pos] == '}') {
                ++pos;
                break;
            }
            return failParse(err, "expected ',' or '}'");
        }
    }
    skipSpace(line, pos);
    if (pos != line.size())
        return failParse(err, "trailing garbage after object");
    return true;
}

TimelineSummary summarizeTimeline(std::istream &in)
{
    TimelineSummary s;
    // Per-core previous cumulative cycle count, for residency deltas.
    std::map<unsigned, std::uint64_t> last_cycles;
    double ipc_sum = 0;
    std::uint64_t ipc_rows = 0;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto obj = parseLineOrThrow(line, line_no);
        ++s.rows;
        const auto core = static_cast<unsigned>(getU64(obj, "core"));
        if (core + 1 > s.cores)
            s.cores = core + 1;
        const std::uint64_t insts = getU64(obj, "insts");
        const std::uint64_t cycles = getU64(obj, "cycles");
        if (insts > s.maxInsts)
            s.maxInsts = insts;
        if (cycles > s.maxCycles)
            s.maxCycles = cycles;
        if (getString(obj, "phase") == "warmup") {
            ++s.warmupRows;
        } else {
            ipc_sum += getDouble(obj, "ipc");
            ++ipc_rows;
        }
        const std::uint64_t prev = last_cycles[core];
        if (cycles > prev)
            s.dl1SizeCycles[getU64(obj, "dl1_bytes")] += cycles - prev;
        last_cycles[core] = cycles;
    }
    if (ipc_rows)
        s.meanIpc = ipc_sum / static_cast<double>(ipc_rows);
    return s;
}

EventsSummary summarizeEvents(std::istream &in,
                              std::uint64_t oscillation_window)
{
    EventsSummary s;
    // Last resize direction per core+cache stream: +1 grow, -1
    // shrink, with the interval it happened at.
    struct LastResize
    {
        int direction = 0;
        std::uint64_t interval = 0;
    };
    std::map<std::string, LastResize> last;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto obj = parseLineOrThrow(line, line_no);
        ++s.events;
        const std::string reason = getString(obj, "reason");
        ++s.byReason[reason];
        s.totalFlushWritebacks += getU64(obj, "flush_writebacks");
        s.totalTransitionCycles += getU64(obj, "transition_cycles");

        const std::uint64_t interval = getU64(obj, "interval");
        // Intervals since the previous event on this stream were
        // spent at the pre-decision size. Streams are keyed by
        // core+cache; events arrive interval-ordered per stream.
        const std::string stream =
            getString(obj, "cache") + "#" +
            std::to_string(getU64(obj, "core"));
        s.sizeIntervals[getU64(obj, "from_bytes")] += 1;

        const std::uint64_t from = getU64(obj, "from_level");
        const std::uint64_t to = getU64(obj, "to_level");
        if (from != to) {
            // Levels grow downward: level 0 is the largest size.
            const int direction = to < from ? +1 : -1;
            LastResize &prev = last[stream];
            if (prev.direction != 0 && prev.direction != direction &&
                interval - prev.interval <= oscillation_window)
                ++s.oscillations;
            prev.direction = direction;
            prev.interval = interval;
        }
    }
    return s;
}

void printTimelineSummary(std::ostream &os, const TimelineSummary &s)
{
    os << "timeline: " << s.rows << " rows (" << s.warmupRows
       << " warmup) across " << s.cores
       << (s.cores == 1 ? " core" : " cores") << "\n"
       << "  max insts:  " << s.maxInsts << "\n"
       << "  max cycles: " << s.maxCycles << "\n"
       << "  mean interval ipc: " << shortestDouble(s.meanIpc) << "\n"
       << "  dl1 size residency (bytes: cycles):\n";
    for (const auto &[bytes, cycles] : s.dl1SizeCycles)
        os << "    " << bytes << ": " << cycles << "\n";
}

void printEventsSummary(std::ostream &os, const EventsSummary &s)
{
    os << "resize events: " << s.events << "\n"
       << "  decisions by reason:\n";
    for (const auto &[reason, count] : s.byReason)
        os << "    " << reason << ": " << count << "\n";
    os << "  size residency (bytes: intervals):\n";
    for (const auto &[bytes, intervals] : s.sizeIntervals)
        os << "    " << bytes << ": " << intervals << "\n";
    os << "  flush writebacks: " << s.totalFlushWritebacks << "\n"
       << "  transition cycles: " << s.totalTransitionCycles << "\n"
       << "  oscillations: " << s.oscillations << "\n";
}

} // namespace rcache
