/**
 * @file
 * Streaming per-set stack-distance profile (Mattson et al. 1970).
 *
 * True LRU has the inclusion property: the content of an A-way set is
 * exactly the A most-recently-used distinct blocks mapping to that
 * set. So one pass that maintains, per set, a move-to-front stack of
 * the maxWays most recent blocks and histograms the depth at which
 * each access finds its block prices *every* associativity 1..maxWays
 * at once: an access hits in an A-way cache iff its per-set stack
 * depth is < A. Per-set refinement (one profile per enabled-set
 * count) extends this to every sets x ways geometry an organization's
 * schedule offers.
 *
 * The counts are exact, not approximate: for a fixed (sets, ways)
 * within this profile's range they equal the detailed Cache model's
 * access/miss counters on the same stream (Cache's LRU replacement is
 * true LRU over the enabled ways, and a static-resized run never
 * changes geometry mid-stream). tests/analytic/ pins this equality
 * per geometry against full System runs.
 *
 * Cost: the stacks are maxWays entries deep (associativities here are
 * <= 8), so an access is a short shift loop over one cache-resident
 * row — not a tree. The classic hash-map + order-statistic-tree
 * formulation is only needed for unbounded distances; a set-
 * associative L1 never needs distances beyond its associativity.
 */

#ifndef RCACHE_ANALYTIC_STACK_PROFILE_HH
#define RCACHE_ANALYTIC_STACK_PROFILE_HH

#include <cstdint>
#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace rcache
{

/** See file comment. */
class StackDistanceProfile
{
  public:
    /**
     * @param sets enabled set count (power of two)
     * @param max_ways deepest associativity to price (>= 1)
     * @param block_bits log2(block size) of the cache being modelled
     */
    StackDistanceProfile(std::uint64_t sets, unsigned max_ways,
                         unsigned block_bits)
        : sets_(sets),
          setMask_(sets - 1),
          maxWays_(max_ways),
          blockBits_(block_bits),
          stacks_(sets * max_ways, invalidBlock),
          hist_(max_ways, 0)
    {
        rc_assert(sets_ > 0 && (sets_ & setMask_) == 0);
        rc_assert(maxWays_ > 0);
    }

    /** Record one access to byte address @p addr. */
    void
    access(Addr addr)
    {
        const Addr blk = addr >> blockBits_;
        Addr *stack = &stacks_[(blk & setMask_) * maxWays_];
        ++accesses_;
        // Move-to-front with a simultaneous shift: after the loop the
        // stack holds the maxWays most-recent distinct blocks of this
        // set in recency order. Finding blk at depth d means exactly
        // d distinct blocks intervened since its last access.
        Addr cur = blk;
        for (unsigned d = 0; d < maxWays_; ++d) {
            const Addr evicted = stack[d];
            stack[d] = cur;
            if (evicted == blk) {
                ++hist_[d];
                return;
            }
            cur = evicted;
        }
        // Cold or deeper than maxWays: a miss at every priced
        // associativity (the deepest entry just fell off, which is
        // precisely the truncated-LRU eviction).
    }

    std::uint64_t sets() const { return sets_; }
    unsigned maxWays() const { return maxWays_; }
    std::uint64_t accesses() const { return accesses_; }

    /** Hits of an LRU cache with this set count and @p ways ways. */
    std::uint64_t
    hits(unsigned ways) const
    {
        rc_assert(ways >= 1 && ways <= maxWays_);
        std::uint64_t h = 0;
        for (unsigned d = 0; d < ways; ++d)
            h += hist_[d];
        return h;
    }

    /** Misses of an LRU cache with this set count and @p ways ways. */
    std::uint64_t misses(unsigned ways) const
    {
        return accesses_ - hits(ways);
    }

  private:
    /** No real block address is all-ones (addresses are shifted down
     *  by blockBits), so this marks an empty stack slot. */
    static constexpr Addr invalidBlock = ~Addr{0};

    std::uint64_t sets_;
    std::uint64_t setMask_;
    unsigned maxWays_;
    unsigned blockBits_;
    std::uint64_t accesses_ = 0;
    /** Row-major: stacks_[set * maxWays_ + depth]. */
    std::vector<Addr> stacks_;
    /** hist_[d] = accesses found at depth d (hits for ways > d). */
    std::vector<std::uint64_t> hist_;
};

} // namespace rcache

#endif // RCACHE_ANALYTIC_STACK_PROFILE_HH
