/**
 * @file
 * Single-pass analytic miss-ratio engine (EngineMode::Analytic).
 *
 * One AnalyticPass streams a workload exactly once and prices *every*
 * static L1 geometry a scenario axis can ask for, by combining three
 * per-event consumers:
 *
 *  - per-set stack-distance profiles (analytic/stack_profile.hh), one
 *    per (side, enabled-set-count): exact LRU hit/miss counts for
 *    every sets x ways geometry the resizing organizations offer;
 *  - full-geometry reference contexts (real Cache + Hierarchy per
 *    distinct geometry/latency tuple): exact baseline L2/memory/
 *    writeback traffic and the L2-hit vs memory split of each side's
 *    misses, used to scale downstream traffic for resized geometries;
 *  - a real BranchPredictor plus the instruction-mix tallies the
 *    energy model charges per event.
 *
 * The pass replicates the *timing cores'* reference stream, not an
 * idealized one: instruction fetch performs one il1 access per
 * fetch-group boundary or block change (redundant in-block re-probes
 * included — they are real, guaranteed-MRU Cache accesses in the
 * detailed model and are fed to the profiles the same way), data
 * accesses issue in program order, and taken/mispredicted branches
 * restart the fetch group. With true-LRU replacement and a static
 * geometry this makes the per-geometry L1 access and miss counts
 * *equal* to the detailed engine's, which tests/analytic/ pins.
 *
 * What is modelled rather than measured: cycles come from a
 * calibrated CPI model (miss exposure x miss penalty), writeback and
 * memory traffic for non-baseline geometries scale from the baseline
 * context's ratios, and resize dynamics do not exist (the analytic
 * engine prices static geometries only — Strategy::Dynamic is
 * rejected, as are multi-core configs and non-LRU replacement).
 *
 * Sweeps share one pass per (workload, stream-shape) across all jobs
 * of a scenario axis (scenario/scenario_sweep.cc); the single-job
 * entry point runAnalyticJob() below builds a private pass, which is
 * what `executeRunJob` dispatches to for one-off analytic runs.
 */

#ifndef RCACHE_ANALYTIC_ANALYTIC_ENGINE_HH
#define RCACHE_ANALYTIC_ANALYTIC_ENGINE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytic/stack_profile.hh"
#include "runner/sweep_runner.hh"
#include "sim/system.hh"

namespace rcache
{

/** See file comment. */
class AnalyticPass
{
  public:
    /** Exact baseline (full-geometry) counts of one registered
     *  configuration, plus the hierarchy latencies pricing needs. */
    struct BaselineStats
    {
        std::uint64_t il1Accesses = 0;
        std::uint64_t il1Misses = 0;
        std::uint64_t dl1Accesses = 0;
        std::uint64_t dl1Misses = 0;
        std::uint64_t dl1Writebacks = 0;
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t memAccesses = 0;
        /** How many of each side's L1 misses hit in L2. */
        std::uint64_t il1MissL2Hits = 0;
        std::uint64_t dl1MissL2Hits = 0;
        /** Miss penalties beyond the L1 access, in cycles. */
        std::uint64_t l2HitPenalty = 0;
        std::uint64_t memPenalty = 0;
    };

    /**
     * @param profile workload to stream (once, at run())
     * @param insts   stream length in instructions
     */
    AnalyticPass(const BenchmarkProfile &profile, std::uint64_t insts);
    ~AnalyticPass();

    AnalyticPass(const AnalyticPass &) = delete;
    AnalyticPass &operator=(const AnalyticPass &) = delete;

    /**
     * Jobs whose configs share a stream key produce identical event
     * streams and may share one pass; anything stream-relevant
     * (workload, length, fetch width, block sizes, predictor shape)
     * is in the key, pure pricing parameters (sizes, associativities,
     * latencies, energy, core widths) are not.
     */
    static std::string streamKey(const SystemConfig &cfg,
                                 const std::string &workload,
                                 std::uint64_t insts);

    /**
     * Register one configuration before run(): creates its baseline
     * context (if its geometry/latency tuple is new) and extends the
     * profile requirements to every (sets, ways) any organization's
     * schedule offers for its L1 geometries. Fatal after run(), or if
     * @p cfg's stream key differs from a previously registered one.
     */
    void addConfig(const SystemConfig &cfg);

    /** Stream the workload once through every registered consumer. */
    void run();
    bool ran() const { return ran_; }

    /** @name Post-run queries (fatal before run()) */
    /// @{
    /** L1 access counts; geometry-independent on each side. */
    std::uint64_t il1Accesses() const;
    std::uint64_t dl1Accesses() const;
    /** Exact LRU miss count at an enabled (sets, ways) geometry. The
     *  geometry must be covered by a registered config's schedules. */
    std::uint64_t il1MissesAt(std::uint64_t sets, unsigned ways) const;
    std::uint64_t dl1MissesAt(std::uint64_t sets, unsigned ways) const;
    /** Instruction-mix tallies (cycles 0, outOfOrder unset — the
     *  pricing step owns both). */
    const CoreActivity &mix() const;
    /** Baseline stats of a registered configuration. */
    const BaselineStats &baseline(const SystemConfig &cfg) const;
    /// @}

  private:
    struct Context;

    void il1Event(Addr pc);
    void dl1Event(Addr addr, bool is_write);
    const StackDistanceProfile &
    profileFor(const std::vector<StackDistanceProfile> &side,
               std::uint64_t sets, unsigned ways) const;

    BenchmarkProfile profile_;
    std::uint64_t insts_;
    bool ran_ = false;

    /** Stream-shape parameters, locked by the first addConfig(). */
    bool shapeSet_ = false;
    unsigned fetchWidth_ = 0;
    unsigned il1BlockBits_ = 0;
    unsigned dl1BlockBits_ = 0;
    BranchPredictorParams bpred_;
    std::string key_;

    /** Per-side profile requirements: enabled sets -> deepest ways. */
    std::map<std::uint64_t, unsigned> il1Req_;
    std::map<std::uint64_t, unsigned> dl1Req_;
    std::vector<StackDistanceProfile> il1Profiles_;
    std::vector<StackDistanceProfile> dl1Profiles_;

    /** Baseline contexts keyed by geometry/latency tuple. */
    std::map<std::string, std::unique_ptr<Context>> contexts_;

    CoreActivity mix_;
};

/**
 * Price one analytic design point from a completed pass: resolve the
 * job's static geometries through its organizations' schedules, read
 * exact access/miss counts from the profiles, scale writeback/L2/
 * memory traffic from the job's baseline context, model cycles with
 * the calibrated CPI model, and charge the energy model with
 * explicit activity totals. Pure function of (job, pass); the pass
 * must have seen addConfig(job.cfg) before it ran. Fatal for
 * non-analytic jobs, multi-core configs, or Strategy::Dynamic.
 */
RunResult priceAnalyticJob(const RunJob &job, const AnalyticPass &pass);

/**
 * The single-job path executeRunJob dispatches to: build a private
 * AnalyticPass for this job alone, run it, price it. Sweeps instead
 * share one pass across every job with the same stream key — that is
 * the engine's entire point — via AnalyticBatch below.
 *
 * Batch pricing: one AnalyticPass per distinct (workload,
 * stream-shape) pair prices every job that shares it. Register every
 * configuration the batch will ever see up front (a pass cannot
 * learn new geometries once it has run), then price job lists in
 * order; each pass streams its workload lazily the first time a job
 * prices against it. The exhaustive sweep engine and the adaptive
 * search share this one implementation, so their per-job results
 * cannot drift.
 */
class AnalyticBatch
{
  public:
    /** Register one future job's configuration. @p workload is the
     *  effective workload name (the profile jobs will carry). */
    void registerConfig(const SystemConfig &cfg,
                        const BenchmarkProfile &workload,
                        std::uint64_t insts);

    /** Price @p jobs in order, running passes on first use. Every
     *  job's config must have been registered. */
    std::vector<RunResult> price(const std::vector<RunJob> &jobs);

  private:
    std::map<std::string, std::unique_ptr<AnalyticPass>> passes_;
};

RunResult runAnalyticJob(const RunJob &job);

} // namespace rcache

#endif // RCACHE_ANALYTIC_ANALYTIC_ENGINE_HH
