#include "analytic/analytic_engine.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cache/hierarchy.hh"
#include "core/size_schedule.hh"
#include "cpu/branch_predictor.hh"
#include "workload/synthetic.hh"
#include "workload/workload_factory.hh"

namespace rcache
{

namespace
{

/** Every organization whose schedule a registered config might price. */
constexpr Organization allOrgs[] = {
    Organization::None,
    Organization::SelectiveWays,
    Organization::SelectiveSets,
    Organization::Hybrid,
};

std::string
geometryKey(const CacheGeometry &g)
{
    std::ostringstream os;
    os << g.size << 'x' << g.assoc << 'x' << g.blockSize << 'x'
       << g.subarraySize;
    return os.str();
}

/** Key of the fields a baseline context depends on. */
std::string
contextKeyOf(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << geometryKey(cfg.il1) << '|' << geometryKey(cfg.dl1) << '|'
       << geometryKey(cfg.l2) << '|' << cfg.lat.l1Latency << ','
       << cfg.lat.l2Latency << ',' << cfg.lat.memBaseLatency << ','
       << cfg.lat.memCyclesPer8Bytes;
    return os.str();
}

/**
 * The geometry a static design point actually runs at: Strategy::None
 * is the full geometry, Strategy::Static is schedule level
 * setup.staticLevel of the side's organization. A detailed static run
 * resizes once at construction and never again, so pricing that one
 * geometry for the whole stream is exact, not an approximation.
 */
ResizeConfig
staticGeometry(Organization org, const CacheGeometry &g,
               const ResizeSetup &setup)
{
    switch (setup.strategy) {
      case Strategy::None:
        return {g.numSets(), g.assoc};
      case Strategy::Static: {
        const std::vector<ResizeConfig> sched = buildSchedule(org, g);
        rc_assert(setup.staticLevel < sched.size());
        return sched[setup.staticLevel];
      }
      case Strategy::Dynamic:
        break;
    }
    rc_fatal("the analytic engine prices static geometries only; "
             "Strategy::Dynamic needs the detailed engine");
}

} // namespace

struct AnalyticPass::Context
{
    SystemConfig cfg;
    Cache il1;
    Cache dl1;
    Hierarchy hier;
    std::uint64_t il1MissL2Hit = 0;
    std::uint64_t dl1MissL2Hit = 0;
    BaselineStats stats;

    explicit Context(const SystemConfig &c)
        : cfg(c),
          il1("analytic_il1", c.il1),
          dl1("analytic_dl1", c.dl1),
          hier(&il1, &dl1, c.l2, c.lat)
    {
    }
};

AnalyticPass::AnalyticPass(const BenchmarkProfile &profile,
                           std::uint64_t insts)
    : profile_(profile), insts_(insts)
{
}

AnalyticPass::~AnalyticPass() = default;

std::string
AnalyticPass::streamKey(const SystemConfig &cfg,
                        const std::string &workload,
                        std::uint64_t insts)
{
    std::ostringstream os;
    os << workload << '|' << insts << '|' << cfg.core.fetchWidth
       << '|' << cfg.il1.blockBits() << '|' << cfg.dl1.blockBits()
       << '|' << cfg.core.bpred.bimodalEntries << ','
       << cfg.core.bpred.gshareEntries << ','
       << cfg.core.bpred.chooserEntries << ','
       << cfg.core.bpred.historyBits << ','
       << cfg.core.bpred.btbEntries;
    return os.str();
}

void
AnalyticPass::addConfig(const SystemConfig &cfg)
{
    rc_assert(!ran_);
    if (cfg.cores != 1)
        rc_fatal("the analytic engine supports single-core "
                 "configurations only");
    if (cfg.policy != "lru")
        rc_fatal("the analytic engine models true-LRU caches only; "
                 "got replacement policy '" + cfg.policy + "'");

    const std::string key =
        streamKey(cfg, profile_.name, insts_);
    if (!shapeSet_) {
        shapeSet_ = true;
        key_ = key;
        fetchWidth_ = cfg.core.fetchWidth;
        il1BlockBits_ = cfg.il1.blockBits();
        dl1BlockBits_ = cfg.dl1.blockBits();
        bpred_ = cfg.core.bpred;
    } else if (key != key_) {
        rc_fatal("AnalyticPass stream key mismatch: pass built for '" +
                 key_ + "', config needs '" + key + "'");
    }

    // Requirement superset: whatever organization a job later names,
    // its schedule is covered. The union costs a handful of profiles
    // per side (one per distinct set count).
    for (Organization org : allOrgs) {
        for (const ResizeConfig &rc : buildSchedule(org, cfg.il1)) {
            unsigned &ways = il1Req_[rc.sets];
            ways = std::max(ways, rc.ways);
        }
        for (const ResizeConfig &rc : buildSchedule(org, cfg.dl1)) {
            unsigned &ways = dl1Req_[rc.sets];
            ways = std::max(ways, rc.ways);
        }
    }

    const std::string ckey = contextKeyOf(cfg);
    if (!contexts_.count(ckey))
        contexts_.emplace(ckey, std::make_unique<Context>(cfg));
}

void
AnalyticPass::il1Event(Addr pc)
{
    for (StackDistanceProfile &p : il1Profiles_)
        p.access(pc);
    for (auto &[key, ctx] : contexts_) {
        const MemAccessResult res = ctx->hier.instAccess(pc);
        if (!res.l1Hit && res.l2Hit)
            ++ctx->il1MissL2Hit;
    }
}

void
AnalyticPass::dl1Event(Addr addr, bool is_write)
{
    for (StackDistanceProfile &p : dl1Profiles_)
        p.access(addr);
    for (auto &[key, ctx] : contexts_) {
        const MemAccessResult res = ctx->hier.dataAccess(addr, is_write);
        if (!res.l1Hit && res.l2Hit)
            ++ctx->dl1MissL2Hit;
    }
}

void
AnalyticPass::run()
{
    rc_assert(!ran_);
    rc_assert(shapeSet_ && !contexts_.empty());

    il1Profiles_.reserve(il1Req_.size());
    for (const auto &[sets, ways] : il1Req_)
        il1Profiles_.emplace_back(sets, ways, il1BlockBits_);
    dl1Profiles_.reserve(dl1Req_.size());
    for (const auto &[sets, ways] : dl1Req_)
        dl1Profiles_.emplace_back(sets, ways, dl1BlockBits_);

    BranchPredictor bpred(bpred_);
    const std::unique_ptr<Workload> wlp = makeWorkload(profile_);
    Workload &wl = *wlp;

    // Fetch replica of cpu/core.cc fetchInst(): one il1 access per
    // fetch-group boundary or block change; taken or mispredicted
    // branches end the group (redirectFetch). Matching the timing
    // cores' redundant in-block re-probes is what makes the Cache
    // access counters — not just the miss counts — line up exactly.
    Addr curFetchBlock = ~Addr{0};
    unsigned groupRemaining = 0;

    forEachBatched(wl, insts_, [&](const MicroInst &inst) {
        ++mix_.insts;
        const Addr blk = inst.pc >> il1BlockBits_;
        if (blk != curFetchBlock || groupRemaining == 0) {
            il1Event(inst.pc);
            curFetchBlock = blk;
            groupRemaining = fetchWidth_;
        }
        --groupRemaining;

        switch (inst.op) {
          case OpClass::IntAlu:
            ++mix_.intOps;
            break;
          case OpClass::FpAlu:
            ++mix_.fpOps;
            break;
          case OpClass::Load:
            ++mix_.loads;
            dl1Event(inst.effAddr, false);
            break;
          case OpClass::Store:
            ++mix_.stores;
            dl1Event(inst.effAddr, true);
            break;
          case OpClass::Branch: {
            // The timing cores also charge branches as int-ALU work
            // (energy), and both issue the predictor update once.
            ++mix_.branches;
            ++mix_.intOps;
            const bool correct = bpred.predictAndUpdate(
                inst.pc, inst.taken, inst.target);
            if (!correct || inst.taken) {
                curFetchBlock = ~Addr{0};
                groupRemaining = 0;
            }
            break;
          }
        }
    });
    mix_.mispredicts = bpred.mispredicts();
    ran_ = true;

    // Cross-check the two independent machineries against each other:
    // at each context's full geometry the stack profiles must agree
    // with the real Cache models to the event.
    for (auto &[key, ctx] : contexts_) {
        const Cache &i = ctx->il1;
        const Cache &d = ctx->dl1;
        rc_assert(il1Accesses() == i.accesses());
        rc_assert(dl1Accesses() == d.accesses());
        rc_assert(il1MissesAt(ctx->cfg.il1.numSets(),
                              ctx->cfg.il1.assoc) == i.misses());
        rc_assert(dl1MissesAt(ctx->cfg.dl1.numSets(),
                              ctx->cfg.dl1.assoc) == d.misses());

        BaselineStats &b = ctx->stats;
        b.il1Accesses = i.accesses();
        b.il1Misses = i.misses();
        b.dl1Accesses = d.accesses();
        b.dl1Misses = d.misses();
        b.dl1Writebacks = d.writebacks();
        b.l2Accesses = ctx->hier.l2().accesses();
        b.l2Misses = ctx->hier.l2().misses();
        b.memAccesses =
            ctx->hier.memReads() + ctx->hier.memWrites();
        b.il1MissL2Hits = ctx->il1MissL2Hit;
        b.dl1MissL2Hits = ctx->dl1MissL2Hit;
        b.l2HitPenalty = ctx->hier.l2HitPenalty();
        b.memPenalty = ctx->hier.memPenalty();
    }
}

const StackDistanceProfile &
AnalyticPass::profileFor(const std::vector<StackDistanceProfile> &side,
                         std::uint64_t sets, unsigned ways) const
{
    for (const StackDistanceProfile &p : side)
        if (p.sets() == sets && ways <= p.maxWays())
            return p;
    rc_fatal("analytic pass has no profile covering " +
             std::to_string(sets) + " sets x " +
             std::to_string(ways) + " ways (geometry never "
             "registered via addConfig)");
}

std::uint64_t
AnalyticPass::il1Accesses() const
{
    rc_assert(ran_);
    return il1Profiles_.front().accesses();
}

std::uint64_t
AnalyticPass::dl1Accesses() const
{
    rc_assert(ran_);
    return dl1Profiles_.front().accesses();
}

std::uint64_t
AnalyticPass::il1MissesAt(std::uint64_t sets, unsigned ways) const
{
    rc_assert(ran_);
    return profileFor(il1Profiles_, sets, ways).misses(ways);
}

std::uint64_t
AnalyticPass::dl1MissesAt(std::uint64_t sets, unsigned ways) const
{
    rc_assert(ran_);
    return profileFor(dl1Profiles_, sets, ways).misses(ways);
}

const CoreActivity &
AnalyticPass::mix() const
{
    rc_assert(ran_);
    return mix_;
}

const AnalyticPass::BaselineStats &
AnalyticPass::baseline(const SystemConfig &cfg) const
{
    rc_assert(ran_);
    const auto it = contexts_.find(contextKeyOf(cfg));
    if (it == contexts_.end())
        rc_fatal("analytic pass has no baseline context for this "
                 "configuration (addConfig was never called with it)");
    return it->second->stats;
}

namespace
{

/**
 * Cycle-model constants, per core model. Miss counts are exact;
 * cycles are this CPI model, least-squares calibrated against the
 * detailed engine over the full SPEC2000 suite on fig4/fig9-shaped
 * static grids (R^2 ~ 0.99) so that E.D orderings — and with them
 * best-size selections — agree. baseCpi covers issue/dependence
 * limits, the exposures are the fraction of a miss's latency the
 * machine fails to hide (the frontend blocks on i-side misses, so
 * those are nearly fully exposed; the OoO window plus MSHR overlap
 * hide most d-side latency), and mispredicts pay the frontend refill.
 */
struct CycleModel
{
    double baseCpi;
    double il1Exposure;
    double dl1L2Exposure;
    double dl1MemExposure;
    double mispredictExtra;
};

constexpr CycleModel oooModel{0.14, 0.92, 0.09, 0.19, 4.3};
constexpr CycleModel inOrderModel{1.05, 1.0, 1.0, 1.0, 1.0};

/**
 * Split one side's miss count into L2-hit and memory-bound cycle
 * charges. Misses up to the baseline count keep the baseline's
 * observed L2/memory split; misses *beyond* it are conflict/capacity
 * misses of a smaller L1 whose blocks still live in the unchanged L2,
 * so they are charged as L2 hits. (Pricing the old way — the whole
 * count at the baseline's blended penalty — overcharges shrunk
 * geometries of memory-bound apps by an order of magnitude.)
 */
struct MissCharge
{
    double l2HitCycles = 0;
    double memCycles = 0;
};

MissCharge
missCharge(std::uint64_t misses, std::uint64_t base_misses,
           std::uint64_t base_l2_hits, double fallback_mem_frac,
           const AnalyticPass::BaselineStats &b)
{
    const double base_part = static_cast<double>(
        std::min<std::uint64_t>(misses, base_misses));
    const double mem_frac =
        base_misses
            ? static_cast<double>(base_misses - base_l2_hits) /
                  static_cast<double>(base_misses)
            : fallback_mem_frac;
    const double mem_misses = base_part * mem_frac;
    return {(static_cast<double>(misses) - mem_misses) *
                static_cast<double>(b.l2HitPenalty),
            mem_misses * static_cast<double>(b.memPenalty)};
}

/** Per-access enabled data subarrays (cache.cc
 *  updateAccessConstants). */
std::uint64_t
enabledSubarrays(const ResizeConfig &rc, const CacheGeometry &g)
{
    const std::uint64_t per_way = std::max<std::uint64_t>(
        1, rc.sets * g.blockSize / g.subarraySize);
    return per_way * rc.ways;
}

CacheActivity
l1Activity(std::uint64_t accesses, std::uint64_t misses,
           const ResizeConfig &rc, const CacheGeometry &g,
           std::uint64_t cycles)
{
    CacheActivity act;
    act.accesses = static_cast<double>(accesses);
    act.misses = static_cast<double>(misses);
    act.prechargeEvents = static_cast<double>(accesses) *
                          static_cast<double>(enabledSubarrays(rc, g));
    act.wayReads =
        static_cast<double>(accesses) * static_cast<double>(rc.ways);
    act.byteCycles =
        static_cast<double>(rc.sizeBytes(g.blockSize)) *
        static_cast<double>(cycles);
    return act;
}

} // namespace

RunResult
priceAnalyticJob(const RunJob &job, const AnalyticPass &pass)
{
    rc_assert(job.engine.analytic());
    rc_assert(pass.ran());
    if (job.cfg.cores != 1)
        rc_fatal("the analytic engine supports single-core "
                 "configurations only");

    const SystemConfig &cfg = job.cfg;
    const ResizeConfig gi =
        staticGeometry(cfg.il1Org, cfg.il1, job.il1);
    const ResizeConfig gd =
        staticGeometry(cfg.dl1Org, cfg.dl1, job.dl1);

    const std::uint64_t acc_i = pass.il1Accesses();
    const std::uint64_t acc_d = pass.dl1Accesses();
    const std::uint64_t miss_i = pass.il1MissesAt(gi.sets, gi.ways);
    const std::uint64_t miss_d = pass.dl1MissesAt(gd.sets, gd.ways);
    const AnalyticPass::BaselineStats &b = pass.baseline(cfg);

    // Downstream traffic: writebacks track d-side misses (an eviction
    // per miss at the baseline dirty fraction) and L2 accesses are L1
    // misses plus writebacks by construction. Memory traffic does NOT
    // scale with L2 pressure — misses beyond the baseline count are
    // conflict misses of a smaller L1 whose blocks still live in the
    // unchanged L2, so the memory access count stays the baseline's
    // (the detailed engine's memory energy is flat across schedule
    // levels for exactly this reason). At the baseline geometry every
    // count reproduces the detailed run's exactly.
    const double wb_scale =
        b.dl1Misses ? static_cast<double>(miss_d) /
                          static_cast<double>(b.dl1Misses)
                    : 0.0;
    const std::uint64_t wb = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(b.dl1Writebacks) * wb_scale));
    const std::uint64_t l2_acc = miss_i + miss_d + wb;
    const double mem_acc = static_cast<double>(b.memAccesses);

    const CycleModel &cm =
        cfg.modelOfCore(0) == CoreModel::OutOfOrder ? oooModel
                                                    : inOrderModel;
    const double fallback_mem_frac =
        b.l2Accesses ? static_cast<double>(b.l2Misses) /
                           static_cast<double>(b.l2Accesses)
                     : 0.0;
    const MissCharge chg_i = missCharge(
        miss_i, b.il1Misses, b.il1MissL2Hits, fallback_mem_frac, b);
    const MissCharge chg_d = missCharge(
        miss_d, b.dl1Misses, b.dl1MissL2Hits, fallback_mem_frac, b);

    CoreActivity act = pass.mix();
    act.outOfOrder = cfg.modelOfCore(0) == CoreModel::OutOfOrder;

    const double modeled =
        static_cast<double>(act.insts) * cm.baseCpi +
        static_cast<double>(act.mispredicts) *
            (cfg.core.frontendDepth + cm.mispredictExtra) +
        cm.il1Exposure * (chg_i.l2HitCycles + chg_i.memCycles) +
        cm.dl1L2Exposure * chg_d.l2HitCycles +
        cm.dl1MemExposure * chg_d.memCycles;
    // The commit width is a hard throughput bound in the detailed
    // model; keep the analytic estimate above it.
    const double floor_cycles = static_cast<double>(act.insts) /
                                static_cast<double>(cfg.core.commitWidth);
    const std::uint64_t cycles = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(std::max(modeled, floor_cycles))));
    act.cycles = cycles;

    const CacheActivity il1_act =
        l1Activity(acc_i, miss_i, gi, cfg.il1, cycles);
    const CacheActivity dl1_act =
        l1Activity(acc_d, miss_d, gd, cfg.dl1, cycles);

    const ProcessorEnergyModel energy(cfg.energy);

    RunResult res;
    res.workload = job.profile.name;
    res.insts = act.insts;
    res.cycles = cycles;
    res.activity = act;
    res.energy = energy.compute(
        act, il1_act, extraTagBits(cfg.il1Org, cfg.il1), dl1_act,
        extraTagBits(cfg.dl1Org, cfg.dl1),
        static_cast<double>(l2_acc), cfg.l2.size, mem_acc);
    res.avgIl1Bytes =
        static_cast<double>(gi.sizeBytes(cfg.il1.blockSize));
    res.avgDl1Bytes =
        static_cast<double>(gd.sizeBytes(cfg.dl1.blockSize));
    res.il1MissRatio =
        acc_i ? static_cast<double>(miss_i) / acc_i : 0.0;
    res.dl1MissRatio =
        acc_d ? static_cast<double>(miss_d) / acc_d : 0.0;
    // L2 contents under a resized L1 are not replayed; the modelled
    // L2 keeps the baseline's miss *count* (extra L1 misses hit it)
    // over the scaled access count (exact at the baseline geometry).
    res.l2MissRatio =
        l2_acc ? static_cast<double>(b.l2Misses) /
                     static_cast<double>(l2_acc)
               : 0.0;
    // A detailed static run performs exactly one resize (the policy
    // applies its level at construction); None performs none.
    res.il1Resizes = job.il1.strategy == Strategy::Static ? 1 : 0;
    res.dl1Resizes = job.dl1.strategy == Strategy::Static ? 1 : 0;
    res.engine = EngineMode::Analytic;
    res.measuredInsts = 0;
    res.warmupInsts = 0;
    res.il1Accesses = acc_i;
    res.il1Misses = miss_i;
    res.dl1Accesses = acc_d;
    res.dl1Misses = miss_d;
    return res;
}

RunResult
runAnalyticJob(const RunJob &job)
{
    AnalyticPass pass(job.profile, job.insts);
    pass.addConfig(job.cfg);
    pass.run();
    return priceAnalyticJob(job, pass);
}

void
AnalyticBatch::registerConfig(const SystemConfig &cfg,
                              const BenchmarkProfile &workload,
                              std::uint64_t insts)
{
    auto &pass =
        passes_[AnalyticPass::streamKey(cfg, workload.name, insts)];
    if (!pass)
        pass = std::make_unique<AnalyticPass>(workload, insts);
    pass->addConfig(cfg);
}

std::vector<RunResult>
AnalyticBatch::price(const std::vector<RunJob> &jobs)
{
    // Jobs are priced in order from shared passes, so every
    // downstream reduction, CSV row, and decision-log line is
    // byte-identical for any --jobs value without touching a runner.
    std::vector<RunResult> out;
    out.reserve(jobs.size());
    for (const RunJob &job : jobs) {
        AnalyticPass &pass = *passes_.at(AnalyticPass::streamKey(
            job.cfg, job.profile.name, job.insts));
        if (!pass.ran())
            pass.run();
        out.push_back(priceAnalyticJob(job, pass));
    }
    return out;
}

} // namespace rcache
