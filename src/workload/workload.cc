#include "workload/workload.hh"

#include "util/logging.hh"
#include "workload/synthetic.hh"

namespace rcache
{

void
Workload::skip(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        next();
}

TraceWorkload::TraceWorkload(std::vector<MicroInst> insts,
                             std::string name)
    : insts_(std::move(insts)), name_(std::move(name))
{
    rc_assert(!insts_.empty());
}

MicroInst
TraceWorkload::next()
{
    MicroInst i = insts_[pos_];
    pos_ = (pos_ + 1) % insts_.size();
    return i;
}

namespace
{

/** Stateless 64-bit mix for per-chunk / per-pc hashing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

constexpr Addr codeBase = 0x00400000;
constexpr Addr codeAliasBase = 0x02000000;
constexpr Addr conflictBase = 0x40000000;
constexpr std::uint64_t codeAliasChunkBytes = 256;

Addr
regionBase(unsigned r)
{
    // Stagger bases so different regions' hot heads do not land on
    // the same cache index (0x01000000 alone is a multiple of every
    // possible set span, which makes direct-mapped configurations
    // thrash artificially).
    return 0x10000000ull + static_cast<Addr>(r) * 0x01000000ull +
           static_cast<Addr>(r) * 8896;
}

/** Quantize a scaled footprint: 64-byte aligned, at least 512 B. */
std::uint64_t
quantize(double bytes)
{
    auto q = static_cast<std::uint64_t>(bytes) & ~std::uint64_t{63};
    return std::max<std::uint64_t>(q, 512);
}

/**
 * First instruction count >= @p i at which @p spec's factor can
 * change (max if never). The boundary for Periodic is exactly where
 * the duty comparison in phaseFactor flips.
 */
std::uint64_t
phaseBoundaryAfter(const PhaseSpec &spec, std::uint64_t i)
{
    switch (spec.kind) {
      case PhaseKind::Constant:
        return ~std::uint64_t{0};
      case PhaseKind::Periodic: {
        const std::uint64_t pos = i % spec.periodInsts;
        const double duty =
            spec.dutyHi * static_cast<double>(spec.periodInsts);
        // Smallest integer position failing "pos < duty".
        auto flip = static_cast<std::uint64_t>(duty);
        while (static_cast<double>(flip) < duty)
            ++flip;
        const std::uint64_t period_start = i - pos;
        return pos < flip ? period_start + flip
                          : period_start + spec.periodInsts;
      }
      case PhaseKind::Drift:
        return i - i % spec.periodInsts + spec.periodInsts;
    }
    rc_panic("bad phase kind");
}

} // namespace

SyntheticWorkload::SyntheticWorkload(const BenchmarkProfile &profile)
    : profile_(profile), rng_(profile.seed)
{
    rc_assert(!profile_.regions.empty());
    rc_assert(profile_.branchFrac > 0 && profile_.branchFrac < 1);
    cursors_.assign(profile_.regions.size(), 0);
    for (const auto &r : profile_.regions)
        totalWeight_ += r.weight;
    rc_assert(totalWeight_ > 0);
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(profile_.seed);
    instCount_ = 0;
    codeOffset_ = 0;
    aliasChunk_ = -1;
    blockRemaining_ = 4;
    std::fill(cursors_.begin(), cursors_.end(), 0);
    lastLoadDist_ = 255;
    invalidatePhaseCaches();
}

void
SyntheticWorkload::skip(std::uint64_t n)
{
    // Jump the phase clock and decorrelate the rng from the skipped
    // span as a pure function of (seed, landing position); region
    // cursors, code offset, and block state carry across untouched.
    // Equal (state, n) pairs land in equal states, which keeps
    // sampled runs bit-identical for any thread count.
    instCount_ += n;
    rng_ = Rng(profile_.seed ^
               mix64(instCount_ * 0x9e3779b97f4a7c15ull));
    invalidatePhaseCaches();
}

std::uint64_t
SyntheticWorkload::cachedCodeFootprint()
{
    if (instCount_ >= codeFpValidUntil_) {
        codeFpCache_ = currentCodeFootprint();
        codeFpValidUntil_ =
            phaseBoundaryAfter(profile_.codePhase, instCount_);
    }
    return codeFpCache_;
}

double
SyntheticWorkload::cachedDataFactor()
{
    if (instCount_ >= dataFactorValidUntil_) {
        dataFactorCache_ = phaseFactor(profile_.dataPhase);
        dataFactorValidUntil_ =
            phaseBoundaryAfter(profile_.dataPhase, instCount_);
    }
    return dataFactorCache_;
}

double
SyntheticWorkload::phaseFactor(const PhaseSpec &spec) const
{
    switch (spec.kind) {
      case PhaseKind::Constant:
        return spec.hi;
      case PhaseKind::Periodic:
        return static_cast<double>(instCount_ % spec.periodInsts) <
                       spec.dutyHi *
                           static_cast<double>(spec.periodInsts)
                   ? spec.hi
                   : spec.lo;
      case PhaseKind::Drift: {
        const std::uint64_t chunk = instCount_ / spec.periodInsts;
        const double u =
            static_cast<double>(mix64(profile_.seed * 31 + chunk) &
                                0xfff) /
            4096.0;
        return spec.lo + u * (spec.hi - spec.lo);
      }
    }
    rc_panic("bad phase kind");
}

std::uint64_t
SyntheticWorkload::currentCodeFootprint() const
{
    return quantize(static_cast<double>(profile_.codeFootprint) *
                    phaseFactor(profile_.codePhase));
}

std::uint64_t
SyntheticWorkload::currentRegionBytes(unsigned r) const
{
    rc_assert(r < profile_.regions.size());
    if (!profile_.regions[r].phased)
        return quantize(
            static_cast<double>(profile_.regions[r].bytes));
    return quantize(static_cast<double>(profile_.regions[r].bytes) *
                    phaseFactor(profile_.dataPhase));
}

Addr
SyntheticWorkload::dataAddr()
{
    // Alias-set access: associativity pressure independent of size.
    if (profile_.dataConflictBlocks > 0 &&
        rng_.chance(profile_.dataConflictFrac)) {
        const std::uint64_t k =
            rng_.nextBelow(profile_.dataConflictBlocks);
        return conflictBase + k * aliasStride;
    }

    // Pick a region by weight.
    double pick = rng_.nextDouble() * totalWeight_;
    unsigned r = 0;
    for (; r + 1 < profile_.regions.size(); ++r) {
        if (pick < profile_.regions[r].weight)
            break;
        pick -= profile_.regions[r].weight;
    }

    const DataRegion &region = profile_.regions[r];
    const std::uint64_t bytes =
        region.phased
            ? quantize(static_cast<double>(region.bytes) *
                       cachedDataFactor())
            : quantize(static_cast<double>(region.bytes));
    std::uint64_t offset;
    if (region.stride == 0) {
        // Skewed random reuse: most accesses land in the hot head.
        std::uint64_t span = bytes;
        if (region.hotWeight > 0 && rng_.chance(region.hotWeight)) {
            span = std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(
                        static_cast<double>(bytes) * region.hotFrac));
        }
        offset = rng_.nextBelow(span / 8) * 8;
    } else {
        // Equivalent to (cursor + stride) % bytes; strides are
        // normally below the region size, so the wrap is a subtract
        // and the division almost never runs.
        std::uint64_t c = cursors_[r] + profile_.regions[r].stride;
        if (c >= bytes) {
            c -= bytes;
            if (c >= bytes)
                c %= bytes;
        }
        cursors_[r] = c;
        offset = c;
    }
    return regionBase(r) + offset;
}

MicroInst
SyntheticWorkload::next()
{
    MicroInst inst;

    const std::uint64_t footprint = cachedCodeFootprint();
    if (aliasChunk_ < 0) {
        // The offset advances by 4 per instruction, so the wrap is
        // rare; pay the division only then.
        if (codeOffset_ >= footprint)
            codeOffset_ %= footprint;
        inst.pc = codeBase + codeOffset_;
    } else {
        codeOffset_ %= codeAliasChunkBytes;
        inst.pc = codeAliasBase +
                  static_cast<Addr>(aliasChunk_) * aliasStride +
                  codeOffset_;
    }

    if (blockRemaining_ == 0) {
        // Block-ending branch with a per-PC direction bias.
        inst.op = OpClass::Branch;
        const double bias_adj =
            (static_cast<double>(mix64(inst.pc) & 0xff) / 256.0 -
             0.5) *
            0.4;
        const double bias = std::min(
            0.98, std::max(0.05, profile_.takenBias + bias_adj));
        inst.taken = rng_.chance(bias);
        if (inst.taken) {
            if (aliasChunk_ < 0 && profile_.codeConflictBlocks > 0 &&
                rng_.chance(profile_.codeConflictFrac)) {
                // Call into an aliasing library chunk.
                aliasChunk_ = static_cast<int>(
                    rng_.nextBelow(profile_.codeConflictBlocks));
                codeOffset_ = 0;
                inst.target =
                    codeAliasBase +
                    static_cast<Addr>(aliasChunk_) * aliasStride;
            } else {
                // Jump within the main footprint, skewed hot.
                aliasChunk_ = -1;
                std::uint64_t span = footprint;
                if (rng_.chance(profile_.codeHotWeight)) {
                    span = std::max<std::uint64_t>(
                        64, static_cast<std::uint64_t>(
                                static_cast<double>(footprint) *
                                profile_.codeHotFrac));
                }
                codeOffset_ = rng_.nextBelow(span) & ~std::uint64_t{15};
                inst.target = codeBase + codeOffset_;
            }
        } else {
            codeOffset_ += 4;
        }
        blockRemaining_ = rng_.nextGeometric(profile_.branchFrac, 32);
    } else {
        --blockRemaining_;
        codeOffset_ += 4;

        const double u = rng_.nextDouble();
        const double mem_frac = profile_.loadFrac + profile_.storeFrac;
        if (u < profile_.loadFrac) {
            inst.op = OpClass::Load;
            inst.effAddr = dataAddr();
        } else if (u < mem_frac) {
            inst.op = OpClass::Store;
            inst.effAddr = dataAddr();
        } else if (u < mem_frac + profile_.fpFrac) {
            inst.op = OpClass::FpAlu;
            inst.latency = profile_.fpLatency;
        } else {
            inst.op = OpClass::IntAlu;
        }
    }

    // Register dependences.
    if (rng_.chance(profile_.depChance)) {
        inst.dep1 = static_cast<std::uint8_t>(
            rng_.nextGeometric(0.35, profile_.maxDepDist));
    }
    if (lastLoadDist_ >= 1 && lastLoadDist_ <= profile_.maxDepDist &&
        rng_.chance(profile_.loadUseChance)) {
        inst.dep2 = static_cast<std::uint8_t>(lastLoadDist_);
    }

    if (inst.op == OpClass::Load)
        lastLoadDist_ = 0;
    if (lastLoadDist_ < 255)
        ++lastLoadDist_;

    ++instCount_;
    return inst;
}

} // namespace rcache
