#include "workload/workload.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workload/synthetic.hh"

namespace rcache
{

void
Workload::skip(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        next();
}

void
Workload::nextBatch(MicroInst *buf, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = next();
}

TraceWorkload::TraceWorkload(std::vector<MicroInst> insts,
                             std::string name)
    : insts_(std::move(insts)), name_(std::move(name))
{
    // The trace loops (next() and skip() index modulo its length), so
    // an empty one is unusable; reject it up front with a real
    // diagnostic instead of dividing by zero later.
    if (insts_.empty())
        rc_fatal("TraceWorkload '" + name_ +
                 "': empty instruction trace (need at least one "
                 "instruction to loop)");
}

MicroInst
TraceWorkload::next()
{
    MicroInst i = insts_[pos_];
    pos_ = (pos_ + 1) % insts_.size();
    return i;
}

void
TraceWorkload::nextBatch(MicroInst *buf, std::size_t n)
{
    // Copy in wrap-free spans instead of taking a modulo per
    // instruction.
    const std::size_t len = insts_.size();
    std::size_t filled = 0;
    while (filled < n) {
        const std::size_t span =
            std::min(n - filled, len - pos_);
        std::copy_n(insts_.begin() +
                        static_cast<std::ptrdiff_t>(pos_),
                    span, buf + filled);
        filled += span;
        pos_ += span;
        if (pos_ == len)
            pos_ = 0;
    }
}

namespace
{

/** Stateless 64-bit mix for per-chunk / per-pc hashing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

constexpr Addr codeBase = 0x00400000;
constexpr Addr codeAliasBase = 0x02000000;
constexpr Addr conflictBase = 0x40000000;
constexpr std::uint64_t codeAliasChunkBytes = 256;

Addr
regionBase(unsigned r)
{
    // Stagger bases so different regions' hot heads do not land on
    // the same cache index (0x01000000 alone is a multiple of every
    // possible set span, which makes direct-mapped configurations
    // thrash artificially).
    return 0x10000000ull + static_cast<Addr>(r) * 0x01000000ull +
           static_cast<Addr>(r) * 8896;
}

/** Quantize a scaled footprint: 64-byte aligned, at least 512 B. */
std::uint64_t
quantize(double bytes)
{
    auto q = static_cast<std::uint64_t>(bytes) & ~std::uint64_t{63};
    return std::max<std::uint64_t>(q, 512);
}

/**
 * First instruction count >= @p i at which @p spec's factor can
 * change (max if never). The boundary for Periodic is exactly where
 * the duty comparison in phaseFactor flips.
 */
std::uint64_t
phaseBoundaryAfter(const PhaseSpec &spec, std::uint64_t i)
{
    switch (spec.kind) {
      case PhaseKind::Constant:
        return ~std::uint64_t{0};
      case PhaseKind::Periodic: {
        const std::uint64_t pos = i % spec.periodInsts;
        const double duty =
            spec.dutyHi * static_cast<double>(spec.periodInsts);
        // Smallest integer position failing "pos < duty".
        auto flip = static_cast<std::uint64_t>(duty);
        while (static_cast<double>(flip) < duty)
            ++flip;
        const std::uint64_t period_start = i - pos;
        return pos < flip ? period_start + flip
                          : period_start + spec.periodInsts;
      }
      case PhaseKind::Drift:
        return i - i % spec.periodInsts + spec.periodInsts;
    }
    rc_panic("bad phase kind");
}

} // namespace

SyntheticWorkload::SyntheticWorkload(const BenchmarkProfile &profile)
    : profile_(profile), rng_(profile.seed)
{
    // Trace-replay profiles must go through makeWorkload; the
    // generator fields of such a profile are meaningless.
    rc_assert(profile_.traceSpec.empty());
    rc_assert(!profile_.regions.empty());
    rc_assert(profile_.branchFrac > 0 && profile_.branchFrac < 1);
    cursors_.assign(profile_.regions.size(), 0);
    for (const auto &r : profile_.regions)
        totalWeight_ += r.weight;
    rc_assert(totalWeight_ > 0);

    // Hoist every fixed-probability draw and per-region constant out
    // of the per-instruction path (see the header's fast-path note).
    regionGeom_.resize(profile_.regions.size());
    regionBases_.reserve(profile_.regions.size());
    thrRegionHot_.reserve(profile_.regions.size());
    for (unsigned r = 0; r < profile_.regions.size(); ++r) {
        regionBases_.push_back(regionBase(r));
        thrRegionHot_.push_back(
            Rng::chanceThreshold(profile_.regions[r].hotWeight));
    }
    thrDataConflict_ = Rng::chanceThreshold(profile_.dataConflictFrac);
    thrCodeConflict_ = Rng::chanceThreshold(profile_.codeConflictFrac);
    thrCodeHotWeight_ = Rng::chanceThreshold(profile_.codeHotWeight);
    thrDep_ = Rng::chanceThreshold(profile_.depChance);
    thrLoadUse_ = Rng::chanceThreshold(profile_.loadUseChance);
    thrBranchFrac_ = Rng::chanceThreshold(profile_.branchFrac);
    thrDepDist_ = Rng::chanceThreshold(0.35);
    for (unsigned k = 0; k < 256; ++k) {
        const double bias_adj =
            (static_cast<double>(k) / 256.0 - 0.5) * 0.4;
        const double bias = std::min(
            0.98, std::max(0.05, profile_.takenBias + bias_adj));
        biasThr_[k] = Rng::chanceThreshold(bias);
    }
    memFrac_ = profile_.loadFrac + profile_.storeFrac;
    memFpFrac_ = memFrac_ + profile_.fpFrac;
    // The op-class pick `u < frac` cascade over one nextDouble() is
    // the same draw compared against three constants, so it
    // thresholds like any other fixed-probability chance.
    thrLoadOp_ = Rng::chanceThreshold(profile_.loadFrac);
    thrMemOp_ = Rng::chanceThreshold(memFrac_);
    thrMemFpOp_ = Rng::chanceThreshold(memFpFrac_);
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(profile_.seed);
    instCount_ = 0;
    codeOffset_ = 0;
    aliasChunk_ = -1;
    blockRemaining_ = 4;
    std::fill(cursors_.begin(), cursors_.end(), 0);
    lastLoadDist_ = 255;
    invalidatePhaseCaches();
}

void
SyntheticWorkload::skip(std::uint64_t n)
{
    // Jump the phase clock and decorrelate the rng from the skipped
    // span as a pure function of (seed, landing position); region
    // cursors, code offset, and block state carry across untouched.
    // Equal (state, n) pairs land in equal states, which keeps
    // sampled runs bit-identical for any thread count.
    instCount_ += n;
    rng_ = Rng(profile_.seed ^
               mix64(instCount_ * 0x9e3779b97f4a7c15ull));
    invalidatePhaseCaches();
}

std::uint64_t
SyntheticWorkload::cachedCodeFootprint(std::uint64_t inst_count)
{
    if (inst_count >= codeFpValidUntil_) {
        codeFpCache_ = quantize(
            static_cast<double>(profile_.codeFootprint) *
            phaseFactorAt(profile_.codePhase, inst_count));
        codeHotSpanCache_ = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(
                    static_cast<double>(codeFpCache_) *
                    profile_.codeHotFrac));
        codeFpValidUntil_ =
            phaseBoundaryAfter(profile_.codePhase, inst_count);
    }
    return codeFpCache_;
}

void
SyntheticWorkload::refreshDataGeom(std::uint64_t inst_count)
{
    const double factor =
        phaseFactorAt(profile_.dataPhase, inst_count);
    for (unsigned r = 0; r < profile_.regions.size(); ++r) {
        const DataRegion &region = profile_.regions[r];
        const std::uint64_t bytes =
            region.phased
                ? quantize(static_cast<double>(region.bytes) * factor)
                : quantize(static_cast<double>(region.bytes));
        regionGeom_[r].bytes = bytes;
        regionGeom_[r].hotSpan = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(
                    static_cast<double>(bytes) * region.hotFrac));
    }
    dataGeomValidUntil_ =
        phaseBoundaryAfter(profile_.dataPhase, inst_count);
}

double
SyntheticWorkload::phaseFactorAt(const PhaseSpec &spec,
                                 std::uint64_t inst_count) const
{
    switch (spec.kind) {
      case PhaseKind::Constant:
        return spec.hi;
      case PhaseKind::Periodic:
        return static_cast<double>(inst_count % spec.periodInsts) <
                       spec.dutyHi *
                           static_cast<double>(spec.periodInsts)
                   ? spec.hi
                   : spec.lo;
      case PhaseKind::Drift: {
        const std::uint64_t chunk = inst_count / spec.periodInsts;
        const double u =
            static_cast<double>(mix64(profile_.seed * 31 + chunk) &
                                0xfff) /
            4096.0;
        return spec.lo + u * (spec.hi - spec.lo);
      }
    }
    rc_panic("bad phase kind");
}

double
SyntheticWorkload::phaseFactor(const PhaseSpec &spec) const
{
    return phaseFactorAt(spec, instCount_);
}

std::uint64_t
SyntheticWorkload::currentCodeFootprint() const
{
    return quantize(static_cast<double>(profile_.codeFootprint) *
                    phaseFactor(profile_.codePhase));
}

std::uint64_t
SyntheticWorkload::currentRegionBytes(unsigned r) const
{
    rc_assert(r < profile_.regions.size());
    if (!profile_.regions[r].phased)
        return quantize(
            static_cast<double>(profile_.regions[r].bytes));
    return quantize(static_cast<double>(profile_.regions[r].bytes) *
                    phaseFactor(profile_.dataPhase));
}

SyntheticWorkload::HotState
SyntheticWorkload::loadHotState() const
{
    return {rng_,        instCount_,    codeOffset_,
            blockRemaining_, aliasChunk_, lastLoadDist_};
}

void
SyntheticWorkload::storeHotState(const HotState &st)
{
    rng_ = st.rng;
    instCount_ = st.instCount;
    codeOffset_ = st.codeOffset;
    blockRemaining_ = st.blockRemaining;
    aliasChunk_ = st.aliasChunk;
    lastLoadDist_ = st.lastLoadDist;
}

Addr
SyntheticWorkload::dataAddr(HotState &st)
{
    // Alias-set access: associativity pressure independent of size.
    if (profile_.dataConflictBlocks > 0 &&
        st.rng.chanceThr(thrDataConflict_)) {
        const std::uint64_t k =
            st.rng.nextBelow(profile_.dataConflictBlocks);
        return conflictBase + k * aliasStride;
    }

    // Pick a region by weight.
    double pick = st.rng.nextDouble() * totalWeight_;
    unsigned r = 0;
    for (; r + 1 < profile_.regions.size(); ++r) {
        if (pick < profile_.regions[r].weight)
            break;
        pick -= profile_.regions[r].weight;
    }

    if (st.instCount >= dataGeomValidUntil_)
        refreshDataGeom(st.instCount);
    const RegionGeom &geom = regionGeom_[r];
    const DataRegion &region = profile_.regions[r];
    std::uint64_t offset;
    if (region.stride == 0) {
        // Skewed random reuse: most accesses land in the hot head.
        // hotWeight <= 0 must consume no draw (the guard order
        // matters, not just the threshold being 0).
        std::uint64_t span = geom.bytes;
        if (region.hotWeight > 0) {
            span = st.rng.chanceThr(thrRegionHot_[r]) ? geom.hotSpan
                                                      : span;
        }
        offset = st.rng.nextBelow(span / 8) * 8;
    } else {
        // Equivalent to (cursor + stride) % bytes; strides are
        // normally below the region size, so the wrap is a subtract
        // and the division almost never runs.
        std::uint64_t c = cursors_[r] + region.stride;
        if (c >= geom.bytes) {
            c -= geom.bytes;
            if (c >= geom.bytes)
                c %= geom.bytes;
        }
        cursors_[r] = c;
        offset = c;
    }
    return regionBases_[r] + offset;
}

MicroInst
SyntheticWorkload::next()
{
    MicroInst inst;
    HotState st = loadHotState();
    genOne(inst, st);
    storeHotState(st);
    return inst;
}

void
SyntheticWorkload::nextBatch(MicroInst *__restrict buf, std::size_t n)
{
    // __restrict plus a stack-local HotState: the output buffer is
    // caller stack space (never an alias of this object) and the hot
    // generator state lives in a local whose address does not escape,
    // so the compiler keeps it in registers across the whole batch.
    HotState st = loadHotState();
    for (std::size_t i = 0; i < n; ++i) {
        MicroInst inst{};
        genOne(inst, st);
        buf[i] = inst;
    }
    storeHotState(st);
}

void
SyntheticWorkload::genOne(MicroInst &inst, HotState &st)
{
    const std::uint64_t footprint =
        cachedCodeFootprint(st.instCount);
    if (st.aliasChunk < 0) {
        // The offset advances by 4 per instruction, so the wrap is
        // rare; pay the division only then.
        if (st.codeOffset >= footprint)
            st.codeOffset %= footprint;
        inst.pc = codeBase + st.codeOffset;
    } else {
        st.codeOffset %= codeAliasChunkBytes;
        inst.pc = codeAliasBase +
                  static_cast<Addr>(st.aliasChunk) * aliasStride +
                  st.codeOffset;
    }

    if (st.blockRemaining == 0) {
        // Block-ending branch with a per-PC direction bias (all 256
        // clamped biases are pre-thresholded in the constructor).
        inst.op = OpClass::Branch;
        inst.taken =
            st.rng.chanceThr(biasThr_[mix64(inst.pc) & 0xff]);
        if (inst.taken) {
            if (st.aliasChunk < 0 &&
                profile_.codeConflictBlocks > 0 &&
                st.rng.chanceThr(thrCodeConflict_)) {
                // Call into an aliasing library chunk.
                st.aliasChunk = static_cast<int>(
                    st.rng.nextBelow(profile_.codeConflictBlocks));
                st.codeOffset = 0;
                inst.target =
                    codeAliasBase +
                    static_cast<Addr>(st.aliasChunk) * aliasStride;
            } else {
                // Jump within the main footprint, skewed hot.
                st.aliasChunk = -1;
                const std::uint64_t span =
                    st.rng.chanceThr(thrCodeHotWeight_)
                        ? codeHotSpanCache_
                        : footprint;
                st.codeOffset =
                    st.rng.nextBelow(span) & ~std::uint64_t{15};
                inst.target = codeBase + st.codeOffset;
            }
        } else {
            st.codeOffset += 4;
        }
        st.blockRemaining =
            st.rng.nextGeometricThr(thrBranchFrac_, 32);
    } else {
        --st.blockRemaining;
        st.codeOffset += 4;

        const std::uint64_t u = st.rng.next() >> 11;
        if (u < thrLoadOp_) {
            inst.op = OpClass::Load;
            inst.effAddr = dataAddr(st);
        } else if (u < thrMemOp_) {
            inst.op = OpClass::Store;
            inst.effAddr = dataAddr(st);
        } else if (u < thrMemFpOp_) {
            inst.op = OpClass::FpAlu;
            inst.latency = profile_.fpLatency;
        } else {
            inst.op = OpClass::IntAlu;
        }
    }

    // Register dependences.
    if (st.rng.chanceThr(thrDep_)) {
        inst.dep1 =
            static_cast<std::uint8_t>(st.rng.nextGeometricThr(
                thrDepDist_, profile_.maxDepDist));
    }
    if (st.lastLoadDist >= 1 &&
        st.lastLoadDist <= profile_.maxDepDist) {
        // The draw's outcome selects a value, not a code path, so it
        // compiles to a conditional move.
        inst.dep2 = st.rng.chanceThr(thrLoadUse_)
                        ? static_cast<std::uint8_t>(st.lastLoadDist)
                        : inst.dep2;
    }

    if (inst.op == OpClass::Load)
        st.lastLoadDist = 0;
    if (st.lastLoadDist < 255)
        ++st.lastLoadDist;

    ++st.instCount;
}

} // namespace rcache
