#include "workload/workload_factory.hh"

#include "util/logging.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_format.hh"

namespace rcache
{

bool
isTraceProfile(const BenchmarkProfile &p)
{
    return !p.traceSpec.empty();
}

bool
traceProfileFromSpec(const std::string &spec, BenchmarkProfile *out,
                     std::string *err)
{
    TraceSpec ts;
    if (!parseTraceSpec(spec, &ts, err))
        return false;
    BenchmarkProfile p;
    p.name = spec;
    p.traceSpec = spec;
    // regions stays empty: SyntheticWorkload's constructor rejects
    // trace profiles that bypass this factory.
    *out = p;
    return true;
}

std::unique_ptr<Workload>
makeWorkload(const BenchmarkProfile &p)
{
    if (!isTraceProfile(p))
        return std::make_unique<SyntheticWorkload>(p);

    TraceSpec ts;
    std::string err;
    if (!parseTraceSpec(p.traceSpec, &ts, &err))
        rc_fatal(err);
    auto wl = StreamingTraceWorkload::open(ts, p.traceSpec, &err);
    if (!wl)
        rc_fatal(err);
    return wl;
}

} // namespace rcache
