/**
 * @file
 * Workload interface: a deterministic stream of micro-instructions.
 */

#ifndef RCACHE_WORKLOAD_WORKLOAD_HH
#define RCACHE_WORKLOAD_WORKLOAD_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/inst.hh"

namespace rcache
{

/**
 * Batch size the CPU models use when draining a workload. One batch
 * of MicroInsts lives on the consumer's stack (~5 KB at 128), small
 * enough to stay cache-resident while large enough to amortize the
 * virtual nextBatch dispatch down to noise per instruction.
 */
inline constexpr std::size_t workloadBatchSize = 128;

class Workload;

/**
 * Drain @p n instructions of @p wl through fixed-size nextBatch
 * batches, invoking @p body(inst) once per instruction in stream
 * order. The shared scaffold of every CPU model's run loop: one
 * stack-resident batch, one virtual dispatch per batch, a short tail
 * batch at the end.
 */
template <typename Body>
inline void forEachBatched(Workload &wl, std::uint64_t n,
                           Body &&body);

/** A reproducible dynamic instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next instruction (streams are unbounded). */
    virtual MicroInst next() = 0;

    /**
     * Produce the next @p n instructions into @p buf. Exactly
     * equivalent to n calls to next() — the stream is identical
     * whatever mix of next()/nextBatch() drains it — but costs one
     * virtual dispatch per batch instead of one per instruction.
     * Generators override the default loop with a tight fill.
     */
    virtual void nextBatch(MicroInst *buf, std::size_t n);

    /** Restart the stream from the beginning (same sequence). */
    virtual void reset() = 0;

    /**
     * Advance the stream position by @p n instructions without
     * producing them. Deterministic: equal states skipped equally end
     * up equal. The default generates and discards; generators that
     * can jump (phase clocks, trace cursors) override this with an
     * O(1) implementation, which is what makes sampled simulation's
     * fast-forward intervals nearly free.
     */
    virtual void skip(std::uint64_t n);

    /** Name for reports. */
    virtual std::string name() const = 0;
};

/** Fixed recorded sequence, for unit tests. */
class TraceWorkload final : public Workload
{
  public:
    /**
     * @param insts recorded sequence; must be non-empty (an empty
     *        trace has no stream to loop and is reported fatally)
     */
    explicit TraceWorkload(std::vector<MicroInst> insts,
                           std::string name = "trace");

    MicroInst next() override;
    void nextBatch(MicroInst *buf, std::size_t n) override;
    void reset() override { pos_ = 0; }
    void skip(std::uint64_t n) override
    {
        pos_ = (pos_ + n) % insts_.size();
    }
    std::string name() const override { return name_; }

  private:
    std::vector<MicroInst> insts_;
    std::size_t pos_ = 0;
    std::string name_;
};

template <typename Body>
inline void
forEachBatched(Workload &wl, std::uint64_t n, Body &&body)
{
    MicroInst batch[workloadBatchSize];
    std::uint64_t done = 0;
    while (done < n) {
        const std::size_t fill =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                workloadBatchSize, n - done));
        wl.nextBatch(batch, fill);
        done += fill;
        for (std::size_t k = 0; k < fill; ++k)
            body(batch[k]);
    }
}

} // namespace rcache

#endif // RCACHE_WORKLOAD_WORKLOAD_HH
