/**
 * @file
 * Workload interface: a deterministic stream of micro-instructions.
 */

#ifndef RCACHE_WORKLOAD_WORKLOAD_HH
#define RCACHE_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "workload/inst.hh"

namespace rcache
{

/** A reproducible dynamic instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next instruction (streams are unbounded). */
    virtual MicroInst next() = 0;

    /** Restart the stream from the beginning (same sequence). */
    virtual void reset() = 0;

    /**
     * Advance the stream position by @p n instructions without
     * producing them. Deterministic: equal states skipped equally end
     * up equal. The default generates and discards; generators that
     * can jump (phase clocks, trace cursors) override this with an
     * O(1) implementation, which is what makes sampled simulation's
     * fast-forward intervals nearly free.
     */
    virtual void skip(std::uint64_t n);

    /** Name for reports. */
    virtual std::string name() const = 0;
};

/** Fixed recorded sequence, for unit tests. */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(std::vector<MicroInst> insts,
                           std::string name = "trace");

    MicroInst next() override;
    void reset() override { pos_ = 0; }
    void skip(std::uint64_t n) override
    {
        pos_ = (pos_ + n) % insts_.size();
    }
    std::string name() const override { return name_; }

  private:
    std::vector<MicroInst> insts_;
    std::size_t pos_ = 0;
    std::string name_;
};

} // namespace rcache

#endif // RCACHE_WORKLOAD_WORKLOAD_HH
