#include "workload/trace_io.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace rcache
{

char
opClassCode(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return 'I';
      case OpClass::FpAlu:
        return 'F';
      case OpClass::Load:
        return 'L';
      case OpClass::Store:
        return 'S';
      case OpClass::Branch:
        return 'B';
    }
    rc_panic("bad op class");
}

OpClass
opClassFromCode(char code)
{
    switch (code) {
      case 'I':
        return OpClass::IntAlu;
      case 'F':
        return OpClass::FpAlu;
      case 'L':
        return OpClass::Load;
      case 'S':
        return OpClass::Store;
      case 'B':
        return OpClass::Branch;
      default:
        rc_fatal(std::string("bad opcode in trace: '") + code + "'");
    }
}

void
writeTrace(std::ostream &os, Workload &source, std::uint64_t count)
{
    os << "# rcache trace v1: op pc eff latency dep1 dep2 taken"
       << " [target]\n";
    for (std::uint64_t i = 0; i < count; ++i) {
        const MicroInst m = source.next();
        os << opClassCode(m.op) << ' ' << std::hex << m.pc << ' '
           << m.effAddr << std::dec << ' '
           << static_cast<unsigned>(m.latency) << ' '
           << static_cast<unsigned>(m.dep1) << ' '
           << static_cast<unsigned>(m.dep2) << ' '
           << (m.taken ? 1 : 0);
        if (m.op == OpClass::Branch && m.taken)
            os << ' ' << std::hex << m.target << std::dec;
        os << '\n';
    }
}

std::vector<MicroInst>
readTrace(std::istream &is)
{
    std::vector<MicroInst> out;
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        char code;
        unsigned latency, dep1, dep2, taken;
        MicroInst m;
        ss >> code >> std::hex >> m.pc >> m.effAddr >> std::dec >>
            latency >> dep1 >> dep2 >> taken;
        if (!ss) {
            rc_fatal("malformed trace line " +
                     std::to_string(lineno) + ": " + line);
        }
        m.op = opClassFromCode(code);
        m.latency = static_cast<std::uint8_t>(latency);
        m.dep1 = static_cast<std::uint8_t>(dep1);
        m.dep2 = static_cast<std::uint8_t>(dep2);
        m.taken = taken != 0;
        if (m.op == OpClass::Branch && m.taken)
            ss >> std::hex >> m.target >> std::dec;
        out.push_back(m);
    }
    return out;
}

TraceWorkload
loadTraceWorkload(const std::string &path, const std::string &name)
{
    std::ifstream f(path);
    if (!f)
        rc_fatal("cannot open trace file: " + path);
    auto insts = readTrace(f);
    if (insts.empty())
        rc_fatal("trace file is empty: " + path);
    return TraceWorkload(std::move(insts), name);
}

} // namespace rcache
