#include "workload/trace_io.hh"

#include <charconv>
#include <fstream>
#include <string_view>

#include "util/logging.hh"

namespace rcache
{

char
opClassCode(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return 'I';
      case OpClass::FpAlu:
        return 'F';
      case OpClass::Load:
        return 'L';
      case OpClass::Store:
        return 'S';
      case OpClass::Branch:
        return 'B';
    }
    rc_panic("bad op class");
}

OpClass
opClassFromCode(char code)
{
    switch (code) {
      case 'I':
        return OpClass::IntAlu;
      case 'F':
        return OpClass::FpAlu;
      case 'L':
        return OpClass::Load;
      case 'S':
        return OpClass::Store;
      case 'B':
        return OpClass::Branch;
      default:
        rc_fatal(std::string("bad opcode in trace: '") + code + "'");
    }
}

void
writeTraceLine(std::ostream &os, const MicroInst &m)
{
    os << opClassCode(m.op) << ' ' << std::hex << m.pc << ' '
       << m.effAddr << std::dec << ' '
       << static_cast<unsigned>(m.latency) << ' '
       << static_cast<unsigned>(m.dep1) << ' '
       << static_cast<unsigned>(m.dep2) << ' ' << (m.taken ? 1 : 0);
    if (m.op == OpClass::Branch && m.taken)
        os << ' ' << std::hex << m.target << std::dec;
    os << '\n';
}

void
writeTrace(std::ostream &os, Workload &source, std::uint64_t count)
{
    os << "# rcache trace v1: op pc eff latency dep1 dep2 taken"
       << " [target]\n";
    for (std::uint64_t i = 0; i < count; ++i) {
        const MicroInst m = source.next();
        writeTraceLine(os, m);
    }
}

namespace
{

/** Split @p line into whitespace-separated fields (no allocation). */
std::size_t
splitFields(std::string_view line, std::string_view *fields,
            std::size_t max_fields)
{
    std::size_t n = 0;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
        if (i >= line.size())
            break;
        const std::size_t begin = i;
        while (i < line.size() && line[i] != ' ' &&
               line[i] != '\t' && line[i] != '\r')
            ++i;
        if (n == max_fields)
            return max_fields + 1; // too many fields
        fields[n++] = line.substr(begin, i - begin);
    }
    return n;
}

/**
 * Strict unsigned parse of a whole field. from_chars rejects signs
 * and junk prefixes; consuming the full field rejects trailing junk;
 * std::errc::result_out_of_range rejects silent wraps.
 */
bool
parseFieldU64(std::string_view f, int base, std::uint64_t &out,
              const char *what, std::string *why)
{
    const auto [end, ec] =
        std::from_chars(f.data(), f.data() + f.size(), out, base);
    if (ec == std::errc::result_out_of_range) {
        if (why)
            *why = std::string(what) + " out of range: '" +
                   std::string(f) + "'";
        return false;
    }
    if (ec != std::errc() || end != f.data() + f.size()) {
        if (why)
            *why = std::string("bad ") + what + ": '" +
                   std::string(f) + "'";
        return false;
    }
    return true;
}

/** Strict decimal parse into a uint8-ranged field. */
bool
parseFieldU8(std::string_view f, std::uint8_t &out, const char *what,
             std::string *why)
{
    std::uint64_t v = 0;
    if (!parseFieldU64(f, 10, v, what, why))
        return false;
    if (v > 255) {
        if (why)
            *why = std::string(what) + " out of range (max 255): '" +
                   std::string(f) + "'";
        return false;
    }
    out = static_cast<std::uint8_t>(v);
    return true;
}

} // namespace

bool
parseTraceLine(const std::string &line, MicroInst &m,
               std::string *why)
{
    constexpr std::size_t max_fields = 8;
    std::string_view fields[max_fields];
    const std::size_t n = splitFields(line, fields, max_fields);
    if (n > max_fields) {
        if (why)
            *why = "too many fields";
        return false;
    }
    if (n < 7) {
        if (why)
            *why = "expected at least 7 fields "
                   "(op pc eff latency dep1 dep2 taken), got " +
                   std::to_string(n);
        return false;
    }

    if (fields[0].size() != 1) {
        if (why)
            *why = "bad opcode: '" + std::string(fields[0]) + "'";
        return false;
    }
    switch (fields[0][0]) {
      case 'I':
        m.op = OpClass::IntAlu;
        break;
      case 'F':
        m.op = OpClass::FpAlu;
        break;
      case 'L':
        m.op = OpClass::Load;
        break;
      case 'S':
        m.op = OpClass::Store;
        break;
      case 'B':
        m.op = OpClass::Branch;
        break;
      default:
        if (why)
            *why = "bad opcode: '" + std::string(fields[0]) + "'";
        return false;
    }

    if (!parseFieldU64(fields[1], 16, m.pc, "pc", why) ||
        !parseFieldU64(fields[2], 16, m.effAddr, "eff-addr", why) ||
        !parseFieldU8(fields[3], m.latency, "latency", why) ||
        !parseFieldU8(fields[4], m.dep1, "dep1", why) ||
        !parseFieldU8(fields[5], m.dep2, "dep2", why)) {
        return false;
    }
    if (fields[6] != "0" && fields[6] != "1") {
        if (why)
            *why = "bad taken flag (want 0 or 1): '" +
                   std::string(fields[6]) + "'";
        return false;
    }
    m.taken = fields[6] == "1";

    const bool wants_target = m.op == OpClass::Branch && m.taken;
    if (wants_target) {
        if (n != 8) {
            if (why)
                *why = "taken branch is missing its target field";
            return false;
        }
        if (!parseFieldU64(fields[7], 16, m.target, "target", why))
            return false;
    } else {
        m.target = 0;
        if (n != 7) {
            if (why)
                *why = "trailing junk after field 7: '" +
                       std::string(fields[7]) + "'";
            return false;
        }
    }
    return true;
}

bool
readTraceStrict(std::istream &is, const std::string &file,
                std::vector<MicroInst> &out, std::string *err)
{
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        MicroInst m;
        std::string why;
        if (!parseTraceLine(line, m, &why)) {
            if (err)
                *err = file + ":" + std::to_string(lineno) + ": " +
                       why;
            return false;
        }
        out.push_back(m);
    }
    return true;
}

std::vector<MicroInst>
readTrace(std::istream &is)
{
    std::vector<MicroInst> out;
    std::string err;
    if (!readTraceStrict(is, "trace", out, &err))
        rc_fatal("malformed trace line: " + err);
    return out;
}

TraceWorkload
loadTraceWorkload(const std::string &path, const std::string &name)
{
    std::ifstream f(path);
    if (!f)
        rc_fatal("cannot open trace file: " + path);
    std::vector<MicroInst> insts;
    std::string err;
    if (!readTraceStrict(f, path, insts, &err))
        rc_fatal("malformed trace line: " + err);
    if (insts.empty())
        rc_fatal("trace file is empty: " + path);
    return TraceWorkload(std::move(insts), name);
}

} // namespace rcache
