#include "workload/streaming_trace.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <string_view>

#include "util/logging.hh"
#include "workload/trace_io.hh"

#ifdef RCACHE_HAVE_ZLIB
#include <zlib.h>
#endif

namespace rcache
{

bool
gzipTraceSupported()
{
#ifdef RCACHE_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

namespace
{

/**
 * Raw byte access to a trace file. Offsets are logical (decompressed)
 * byte positions, so the decoders above never know whether the input
 * was gzipped.
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;
    /** Read up to @p n bytes; short reads only at end of stream. */
    virtual std::size_t read(void *buf, std::size_t n) = 0;
    /** Reposition at logical offset @p off. */
    virtual bool seekTo(std::uint64_t off) = 0;
    /** Bytes of buffering this source holds. */
    virtual std::size_t residentBytes() const = 0;
};

/** Plain file via stdio with one fixed-size buffer. */
class FileSource final : public ByteSource
{
  public:
    static std::unique_ptr<FileSource>
    open(const std::string &path, std::string *err)
    {
        FILE *fp = std::fopen(path.c_str(), "rb");
        if (!fp) {
            if (err)
                *err = "cannot open trace file: " + path;
            return nullptr;
        }
        return std::unique_ptr<FileSource>(new FileSource(fp));
    }

    ~FileSource() override { std::fclose(fp_); }

    std::size_t
    read(void *buf, std::size_t n) override
    {
        return std::fread(buf, 1, n, fp_);
    }

    bool
    seekTo(std::uint64_t off) override
    {
        return ::fseeko(fp_, static_cast<off_t>(off), SEEK_SET) == 0;
    }

    std::size_t residentBytes() const override { return buf_.size(); }

  private:
    explicit FileSource(FILE *fp)
        : fp_(fp), buf_(StreamingTraceWorkload::ioBufferBytes)
    {
        std::setvbuf(fp_, buf_.data(), _IOFBF, buf_.size());
    }

    FILE *fp_;
    std::vector<char> buf_;
};

#ifdef RCACHE_HAVE_ZLIB
/**
 * Gzip-compressed file via zlib's gz* layer. gzseek addresses the
 * decompressed stream; backward seeks rewind and re-inflate (gzip has
 * no random access), forward seeks inflate-and-discard.
 */
class GzSource final : public ByteSource
{
  public:
    static std::unique_ptr<GzSource>
    open(const std::string &path, std::string *err)
    {
        gzFile f = gzopen(path.c_str(), "rb");
        if (!f) {
            if (err)
                *err = "cannot open gzip trace file: " + path;
            return nullptr;
        }
        return std::unique_ptr<GzSource>(new GzSource(f, path));
    }

    ~GzSource() override { gzclose(f_); }

    std::size_t
    read(void *buf, std::size_t n) override
    {
        const int r =
            gzread(f_, buf, static_cast<unsigned>(std::min<std::size_t>(
                                n, 1u << 30)));
        if (r < 0) {
            int ec = Z_OK;
            const char *msg = gzerror(f_, &ec);
            rc_fatal("gzip read error in " + path_ + ": " +
                     (msg ? msg : "unknown"));
        }
        return static_cast<std::size_t>(r);
    }

    bool
    seekTo(std::uint64_t off) override
    {
        return gzseek(f_, static_cast<z_off_t>(off), SEEK_SET) >= 0;
    }

    std::size_t
    residentBytes() const override
    {
        // One gzbuffer for raw input plus zlib's inflate window.
        return StreamingTraceWorkload::ioBufferBytes + (1u << 15);
    }

  private:
    GzSource(gzFile f, std::string path)
        : f_(f), path_(std::move(path))
    {
        gzbuffer(f_, StreamingTraceWorkload::ioBufferBytes);
    }

    gzFile f_;
    std::string path_;
};
#endif // RCACHE_HAVE_ZLIB

std::unique_ptr<ByteSource>
openSource(const TraceSpec &spec, std::string *err)
{
    if (spec.gzip) {
#ifdef RCACHE_HAVE_ZLIB
        return GzSource::open(spec.path, err);
#else
        if (err)
            *err = "gzip trace '" + spec.path +
                   "' needs zlib, which this build was configured "
                   "without";
        return nullptr;
#endif
    }
    return FileSource::open(spec.path, err);
}

/** Buffered line scanner over a ByteSource, tracking the logical
 *  offset of the next unconsumed byte (the seek-index currency). */
class LineScanner
{
  public:
    explicit LineScanner(ByteSource &src) : src_(src), buf_(64 * 1024)
    {
    }

    /** @return false at end of stream (a final unterminated line is
     *          still returned once) */
    bool
    getline(std::string &out)
    {
        out.clear();
        bool any = false;
        for (;;) {
            if (pos_ == len_) {
                len_ = src_.read(buf_.data(), buf_.size());
                pos_ = 0;
                if (len_ == 0)
                    return any;
            }
            const char *begin = buf_.data() + pos_;
            const char *nl = static_cast<const char *>(
                std::memchr(begin, '\n', len_ - pos_));
            const std::size_t span =
                nl ? static_cast<std::size_t>(nl - begin)
                   : len_ - pos_;
            out.append(begin, span);
            any = true;
            pos_ += span;
            consumed_ += span;
            if (nl) {
                ++pos_;
                ++consumed_;
                return true;
            }
        }
    }

    std::uint64_t tellBytes() const { return consumed_; }

    void
    seekTo(std::uint64_t off)
    {
        if (!src_.seekTo(off))
            rc_fatal("trace seek failed");
        consumed_ = off;
        pos_ = len_ = 0;
    }

    std::size_t residentBytes() const { return buf_.size(); }

  private:
    ByteSource &src_;
    std::vector<char> buf_;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
    std::uint64_t consumed_ = 0;
};

/** Strict whole-field unsigned parse (CSV fields, decimal). */
bool
parseCsvU64(std::string_view f, std::uint64_t &out)
{
    const auto [end, ec] =
        std::from_chars(f.data(), f.data() + f.size(), out, 10);
    return ec == std::errc() && end == f.data() + f.size();
}

} // namespace

/**
 * One on-disk format's record stream. decode() fills records in file
 * order and returns short counts only at end of stream; tellBytes /
 * tellLine expose the position of the next unconsumed input for the
 * seek index, and seekTo restores such a position.
 */
class TraceDecoder
{
  public:
    virtual ~TraceDecoder() = default;

    /**
     * Decode up to @p n records. @p got gets the count (0 = end of
     * stream). @return false with @p err set ("path:line: why") on
     * malformed input
     */
    virtual bool decode(MicroInst *buf, std::size_t n,
                        std::size_t *got, std::string *err) = 0;

    /** Logical byte offset of the next unconsumed input. */
    virtual std::uint64_t tellBytes() const = 0;
    /** Lines consumed so far (0 for binary formats). */
    virtual std::uint64_t tellLine() const = 0;
    /** Restore a (tellBytes, tellLine) position. */
    virtual void seekTo(std::uint64_t byte_off,
                        std::uint64_t line) = 0;
    /** Fixed-width fast path: position directly at record @p idx.
     *  @return false if this format cannot (variable-width) */
    virtual bool seekToRecordExact(std::uint64_t idx)
    {
        (void)idx;
        return false;
    }
    /** Buffering this decoder (and its source) holds. */
    virtual std::size_t residentBytes() const = 0;
};

namespace
{

/** Line-oriented decoders share the scanner/lineno machinery. */
class TextDecoder : public TraceDecoder
{
  public:
    TextDecoder(std::unique_ptr<ByteSource> src, std::string path)
        : path_(std::move(path)), src_(std::move(src)), scanner_(*src_)
    {
    }

    bool
    decode(MicroInst *buf, std::size_t n, std::size_t *got,
           std::string *err) override
    {
        std::size_t g = 0;
        while (g < n) {
            if (!scanner_.getline(line_))
                break;
            ++lineno_;
            if (line_.empty() || line_[0] == '#')
                continue;
            if (!line_.empty() && line_.back() == '\r')
                line_.pop_back();
            if (line_.empty())
                continue;
            std::string why;
            if (!parseLine(line_, buf[g], &why)) {
                if (err)
                    *err = path_ + ":" + std::to_string(lineno_) +
                           ": " + why;
                return false;
            }
            ++g;
        }
        *got = g;
        return true;
    }

    std::uint64_t tellBytes() const override
    {
        return scanner_.tellBytes();
    }
    std::uint64_t tellLine() const override { return lineno_; }

    void
    seekTo(std::uint64_t byte_off, std::uint64_t line) override
    {
        scanner_.seekTo(byte_off);
        lineno_ = line;
    }

    std::size_t
    residentBytes() const override
    {
        return scanner_.residentBytes() + line_.capacity() +
               src_->residentBytes();
    }

  protected:
    virtual bool parseLine(const std::string &line, MicroInst &m,
                           std::string *why) = 0;

    std::string path_;

  private:
    std::unique_ptr<ByteSource> src_;
    LineScanner scanner_;
    std::string line_;
    std::uint64_t lineno_ = 0;

    // Member order note: scanner_ references *src_, so src_ is
    // declared first; path_ sits in the protected block above.
};

class NativeDecoder final : public TextDecoder
{
  public:
    using TextDecoder::TextDecoder;

  protected:
    bool
    parseLine(const std::string &line, MicroInst &m,
              std::string *why) override
    {
        return parseTraceLine(line, m, why);
    }
};

class RocksdbDecoder final : public TextDecoder
{
  public:
    using TextDecoder::TextDecoder;

  protected:
    bool
    parseLine(const std::string &line, MicroInst &m,
              std::string *why) override
    {
        // access_time,block_id,block_type,block_size,cf_id,cf_name,
        // level,fd,caller,no_insert,get_id,key_id,kv_size[,...]
        constexpr std::size_t min_fields = 13;
        std::string_view fields[min_fields];
        std::string_view rest = line;
        std::size_t n = 0;
        while (n < min_fields) {
            const std::size_t comma = rest.find(',');
            fields[n++] = rest.substr(0, comma);
            if (comma == std::string_view::npos)
                break;
            rest.remove_prefix(comma + 1);
        }
        if (n < min_fields) {
            if (why)
                *why = "expected at least 13 comma-separated "
                       "rocksdb trace fields, got " +
                       std::to_string(n);
            return false;
        }

        std::uint64_t access_time = 0, block_id = 0, caller = 0,
                      no_insert = 0;
        if (!parseCsvU64(fields[0], access_time)) {
            if (why)
                *why = "bad access_time: '" +
                       std::string(fields[0]) + "'";
            return false;
        }
        if (!parseCsvU64(fields[1], block_id)) {
            if (why)
                *why =
                    "bad block_id: '" + std::string(fields[1]) + "'";
            return false;
        }
        if (!parseCsvU64(fields[8], caller)) {
            if (why)
                *why = "bad caller: '" + std::string(fields[8]) + "'";
            return false;
        }
        if (!parseCsvU64(fields[9], no_insert) || no_insert > 1) {
            if (why)
                *why = "bad no_insert flag: '" +
                       std::string(fields[9]) + "'";
            return false;
        }

        // One 64-byte-granular block read per row. The caller enum
        // seeds the pc so different access paths exercise distinct
        // i-side lines, deterministically.
        m = MicroInst{};
        m.op = OpClass::Load;
        m.effAddr = block_id * 64;
        m.pc = 0x400000 + (caller & 0x3f) * 4;
        m.latency = 1;
        return true;
    }
};

/** 24-byte little-endian packed records (libCacheSim style). */
class LcsDecoder final : public TraceDecoder
{
  public:
    static constexpr std::size_t recordBytes = 24;

    LcsDecoder(std::unique_ptr<ByteSource> src, std::string path)
        : src_(std::move(src)),
          path_(std::move(path)),
          raw_(StreamingTraceWorkload::chunkRecords * recordBytes)
    {
    }

    bool
    decode(MicroInst *buf, std::size_t n, std::size_t *got,
           std::string *err) override
    {
        const std::size_t want =
            std::min(n * recordBytes, raw_.size());
        std::size_t have = 0;
        while (have < want) {
            const std::size_t r =
                src_->read(raw_.data() + have, want - have);
            if (r == 0)
                break;
            have += r;
        }
        if (have % recordBytes != 0) {
            if (err)
                *err = path_ + ": truncated " +
                       std::to_string(recordBytes) +
                       "-byte record at byte offset " +
                       std::to_string(offset_ +
                                      have - have % recordBytes);
            return false;
        }
        const std::size_t g = have / recordBytes;
        for (std::size_t i = 0; i < g; ++i) {
            const unsigned char *p =
                reinterpret_cast<const unsigned char *>(raw_.data()) +
                i * recordBytes;
            // u32 timestamp, u64 obj_id, u32 obj_size, i64 next_vtime
            // — only the object id shapes the access stream.
            const std::uint64_t obj_id = le64(p + 4);
            MicroInst m{};
            m.op = OpClass::Load;
            m.effAddr = obj_id * 64;
            m.pc = 0x400000;
            m.latency = 1;
            buf[i] = m;
        }
        offset_ += have;
        *got = g;
        return true;
    }

    std::uint64_t tellBytes() const override { return offset_; }
    std::uint64_t tellLine() const override { return 0; }

    void
    seekTo(std::uint64_t byte_off, std::uint64_t) override
    {
        if (!src_->seekTo(byte_off))
            rc_fatal("trace seek failed: " + path_);
        offset_ = byte_off;
    }

    bool
    seekToRecordExact(std::uint64_t idx) override
    {
        seekTo(idx * recordBytes, 0);
        return true;
    }

    std::size_t
    residentBytes() const override
    {
        return raw_.size() + src_->residentBytes();
    }

  private:
    static std::uint64_t
    le64(const unsigned char *p)
    {
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | p[i];
        return v;
    }

    std::unique_ptr<ByteSource> src_;
    std::string path_;
    std::vector<char> raw_;
    std::uint64_t offset_ = 0;
};

std::unique_ptr<TraceDecoder>
makeDecoder(const TraceSpec &spec, std::string *err)
{
    auto src = openSource(spec, err);
    if (!src)
        return nullptr;
    switch (spec.format) {
      case TraceFormat::Native:
        return std::make_unique<NativeDecoder>(std::move(src),
                                               spec.path);
      case TraceFormat::Rocksdb:
        return std::make_unique<RocksdbDecoder>(std::move(src),
                                                spec.path);
      case TraceFormat::LcsBin:
        return std::make_unique<LcsDecoder>(std::move(src),
                                            spec.path);
    }
    rc_panic("bad trace format");
}

} // namespace

StreamingTraceWorkload::StreamingTraceWorkload(
    std::unique_ptr<TraceDecoder> decoder, std::string name)
    : decoder_(std::move(decoder)), name_(std::move(name))
{
    chunk_.resize(chunkRecords);
}

StreamingTraceWorkload::~StreamingTraceWorkload() = default;

std::unique_ptr<StreamingTraceWorkload>
StreamingTraceWorkload::open(const TraceSpec &spec,
                             const std::string &name,
                             std::string *err)
{
    auto decoder = makeDecoder(spec, err);
    if (!decoder)
        return nullptr;
    std::unique_ptr<StreamingTraceWorkload> wl(
        new StreamingTraceWorkload(std::move(decoder), name));

    // Eager first decode: unreadable files and malformed leading
    // records fail at open (where the caller has an error channel),
    // not mid-run on a worker thread.
    wl->checkpoints_.push_back({0, 0});
    std::size_t got = 0;
    std::string derr;
    if (!wl->decoder_->decode(wl->chunk_.data(), chunkRecords, &got,
                              &derr)) {
        if (err)
            *err = derr;
        return nullptr;
    }
    if (got == 0) {
        if (err)
            *err = spec.path +
                   ": empty trace (need at least one record to loop)";
        return nullptr;
    }
    wl->cursor_ = got;
    wl->chunkLen_ = got;
    if (got < chunkRecords)
        wl->len_ = got; // whole trace fit in the first chunk
    return wl;
}

std::size_t
StreamingTraceWorkload::decodeSome(MicroInst *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n) {
        // While the length is unknown (first pass) drop a checkpoint
        // at every stride boundary; capping each decode call at the
        // next boundary keeps boundaries aligned with call starts.
        if (len_ == 0 && cursor_ % checkpointStride == 0 &&
            checkpoints_.size() == cursor_ / checkpointStride) {
            checkpoints_.push_back(
                {decoder_->tellBytes(), decoder_->tellLine()});
        }
        const std::uint64_t until_boundary =
            checkpointStride - cursor_ % checkpointStride;
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - filled, until_boundary));
        std::size_t got = 0;
        std::string err;
        if (!decoder_->decode(buf + filled, want, &got, &err))
            rc_fatal("malformed trace record: " + err);
        filled += got;
        cursor_ += got;
        if (got < want)
            break; // end of stream
    }
    return filled;
}

void
StreamingTraceWorkload::seekToRecord(std::uint64_t target)
{
    chunkPos_ = chunkLen_ = 0;
    if (decoder_->seekToRecordExact(target)) {
        cursor_ = target;
        return;
    }
    const std::uint64_t k = target / checkpointStride;
    rc_assert(k < checkpoints_.size());
    decoder_->seekTo(checkpoints_[k].byteOffset,
                     checkpoints_[k].line);
    cursor_ = k * checkpointStride;
    std::uint64_t remain = target - cursor_;
    while (remain) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remain, chunkRecords));
        const std::size_t got = decodeSome(chunk_.data(), want);
        rc_assert(got == want);
        remain -= got;
    }
}

void
StreamingTraceWorkload::ensureLength()
{
    if (len_)
        return;
    // Finish the first pass, decode-and-discarding into the chunk
    // buffer (any undelivered records are restored by the re-seek).
    while (decodeSome(chunk_.data(), chunkRecords) != 0) {
    }
    len_ = cursor_;
    rc_assert(len_ > 0);
    pos_ %= len_;
    seekToRecord(pos_);
}

void
StreamingTraceWorkload::refill()
{
    chunkPos_ = 0;
    std::size_t got = decodeSome(chunk_.data(), chunkRecords);
    if (got == 0) {
        // End of stream: the pass just completed fixes the length on
        // first wrap; every pass loops back to record 0.
        if (len_ == 0)
            len_ = cursor_;
        rc_assert(len_ > 0);
        pos_ %= len_;
        seekToRecord(0);
        got = decodeSome(chunk_.data(), chunkRecords);
        rc_assert(got > 0);
        chunkPos_ = 0;
    }
    chunkLen_ = got;
}

MicroInst
StreamingTraceWorkload::next()
{
    if (chunkPos_ == chunkLen_)
        refill();
    const MicroInst m = chunk_[chunkPos_++];
    ++pos_;
    if (len_ && pos_ >= len_)
        pos_ -= len_;
    return m;
}

void
StreamingTraceWorkload::nextBatch(MicroInst *buf, std::size_t n)
{
    std::size_t filled = 0;
    while (filled < n) {
        if (chunkPos_ == chunkLen_)
            refill();
        const std::size_t span =
            std::min(n - filled, chunkLen_ - chunkPos_);
        std::copy_n(chunk_.begin() +
                        static_cast<std::ptrdiff_t>(chunkPos_),
                    span, buf + filled);
        chunkPos_ += span;
        filled += span;
        pos_ += span;
        if (len_ && pos_ >= len_)
            pos_ %= len_;
    }
}

void
StreamingTraceWorkload::reset()
{
    pos_ = 0;
    seekToRecord(0);
}

void
StreamingTraceWorkload::skip(std::uint64_t n)
{
    ensureLength();
    pos_ = (pos_ + n) % len_;
    seekToRecord(pos_);
}

std::uint64_t
StreamingTraceWorkload::records()
{
    ensureLength();
    return len_;
}

std::size_t
StreamingTraceWorkload::residentBytes() const
{
    return chunk_.capacity() * sizeof(MicroInst) +
           checkpoints_.capacity() * sizeof(Checkpoint) +
           decoder_->residentBytes();
}

bool
convertTraceToNative(const TraceSpec &spec, std::ostream &os,
                     std::uint64_t limit, std::string *err)
{
    auto decoder = makeDecoder(spec, err);
    if (!decoder)
        return false;

    os << "# rcache trace v1: op pc eff latency dep1 dep2 taken"
       << " [target]\n";
    os << "# converted from " << traceFormatName(spec.format) << ": "
       << spec.path << "\n";

    std::vector<MicroInst> buf(StreamingTraceWorkload::chunkRecords);
    std::uint64_t written = 0;
    for (;;) {
        std::size_t want = buf.size();
        if (limit)
            want = static_cast<std::size_t>(std::min<std::uint64_t>(
                want, limit - written));
        if (want == 0)
            break;
        std::size_t got = 0;
        if (!decoder->decode(buf.data(), want, &got, err))
            return false;
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i)
            writeTraceLine(os, buf[i]);
        written += got;
    }
    if (written == 0) {
        if (err)
            *err = spec.path + ": empty trace";
        return false;
    }
    return true;
}

} // namespace rcache
