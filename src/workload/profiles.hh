/**
 * @file
 * The 12 benchmark profiles standing in for the paper's SPEC95/2000
 * applications (ammp, applu, apsi, compress, gcc, ijpeg, m88ksim,
 * su2cor, swim, tomcatv, vortex, vpr).
 *
 * Each profile is tuned to the cache-behaviour class the paper reports
 * (Sections 4.1-4.2); the per-profile comments in profiles.cc document
 * the mapping. Working-set sizes are chosen against the paper's 32 KB
 * L1s: "small" working sets sit at or below the smallest offered
 * selective-sets size, "needs associativity" profiles carry an alias
 * set that capacity cannot absorb, "between offered sizes" profiles
 * target the paper's unavailable-size-emulation scenario, and phase
 * kinds reproduce the constant / varying / periodic taxonomy of
 * Section 4.2.1.
 */

#ifndef RCACHE_WORKLOAD_PROFILES_HH
#define RCACHE_WORKLOAD_PROFILES_HH

#include <optional>
#include <vector>

#include "workload/synthetic.hh"

namespace rcache
{

/** All 12 profiles, in the paper's (alphabetical) order. */
std::vector<BenchmarkProfile> spec2000Suite();

/** Look up one profile by name; fatal if unknown. */
BenchmarkProfile profileByName(const std::string &name);

/** The 12 names, in suite order. */
std::vector<std::string> suiteNames();

/**
 * @name Workload mixes
 * A mix name joins profile names with '+' ("gcc+mcf"): the
 * multi-programmed workload the multi-core system cycles across its
 * cores (core i runs component i mod size). A plain profile name is
 * the 1-element mix. Everywhere an app name is accepted (scenario
 * [workloads], the mix axis, the CLI's --mix) a mix name is too.
 */
/// @{

/**
 * Split a '+'-joined list into its raw components ("a+b" -> {"a",
 * "b"}); empty components (leading/trailing/doubled '+') are
 * preserved so callers can reject them with a precise message. The
 * one splitter shared by mix names and the scenario layer's
 * core-model lists.
 */
std::vector<std::string> splitPlusList(const std::string &text);

/**
 * Resolve @p name into its component profiles. On failure (empty
 * component or unknown profile) returns nullopt and, when @p err is
 * non-null, fills it with a one-line explanation.
 */
std::optional<std::vector<BenchmarkProfile>>
mixByName(const std::string &name, std::string *err = nullptr);
/// @}

} // namespace rcache

#endif // RCACHE_WORKLOAD_PROFILES_HH
