#include "workload/trace_format.hh"

#include "util/logging.hh"

namespace rcache
{

namespace
{

constexpr const char *specPrefix = "trace:";

/** Lower-cased extension of @p path ("" if none). */
std::string
extensionOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return "";
    std::string ext = path.substr(dot);
    for (char &c : ext)
        c = static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    return ext;
}

} // namespace

std::string
traceFormatName(TraceFormat fmt)
{
    switch (fmt) {
      case TraceFormat::Native:
        return "native";
      case TraceFormat::Rocksdb:
        return "rocksdb";
      case TraceFormat::LcsBin:
        return "lcs";
    }
    rc_panic("bad trace format");
}

bool
traceFormatByName(const std::string &name, TraceFormat *out)
{
    if (name == "native")
        *out = TraceFormat::Native;
    else if (name == "rocksdb")
        *out = TraceFormat::Rocksdb;
    else if (name == "lcs")
        *out = TraceFormat::LcsBin;
    else
        return false;
    return true;
}

bool
isTraceSpec(const std::string &name)
{
    return name.rfind(specPrefix, 0) == 0;
}

bool
parseTraceSpec(const std::string &spec, TraceSpec *out,
               std::string *err)
{
    if (!isTraceSpec(spec)) {
        if (err)
            *err = "not a trace spec (want trace:PATH[:FORMAT]): '" +
                   spec + "'";
        return false;
    }
    std::string rest = spec.substr(sizeof("trace:") - 1);

    // An explicit format rides after the last ':' (paths themselves
    // rarely contain one; a path that does just needs the explicit
    // format appended).
    TraceFormat explicit_fmt{};
    bool have_explicit = false;
    const std::size_t colon = rest.find_last_of(':');
    if (colon != std::string::npos) {
        const std::string tail = rest.substr(colon + 1);
        if (!traceFormatByName(tail, &explicit_fmt)) {
            if (err)
                *err = "unknown trace format '" + tail +
                       "' in '" + spec +
                       "' (want native, rocksdb, or lcs)";
            return false;
        }
        have_explicit = true;
        rest.resize(colon);
    }
    if (rest.empty()) {
        if (err)
            *err = "empty path in trace spec '" + spec + "'";
        return false;
    }

    TraceSpec ts;
    ts.path = rest;
    std::string stem = rest;
    if (extensionOf(stem) == ".gz") {
        ts.gzip = true;
        stem.resize(stem.size() - 3);
    }
    if (have_explicit) {
        ts.format = explicit_fmt;
    } else {
        const std::string ext = extensionOf(stem);
        if (ext == ".txt" || ext == ".trace") {
            ts.format = TraceFormat::Native;
        } else if (ext == ".csv") {
            ts.format = TraceFormat::Rocksdb;
        } else if (ext == ".bin" || ext == ".lcs") {
            ts.format = TraceFormat::LcsBin;
        } else {
            if (err)
                *err = "cannot infer trace format from '" + rest +
                       "'; append :native, :rocksdb, or :lcs";
            return false;
        }
    }
    *out = ts;
    return true;
}

} // namespace rcache
