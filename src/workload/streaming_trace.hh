/**
 * @file
 * StreamingTraceWorkload: a Workload over an on-disk trace, decoded
 * in bounded-memory chunks instead of materialized.
 *
 * Memory bound: one decoded chunk (chunkRecords MicroInsts, ~160 KB),
 * one I/O buffer (ioBufferBytes), one line scratch for the text
 * formats, and a sparse seek index of one {offset, line} entry per
 * checkpointStride records (~16 bytes per 8192 records — under 100 KB
 * even for a 50 M-record multi-GB trace). Nothing scales with file
 * size beyond the index; a multi-GB trace streams through nextBatch
 * at a fixed footprint.
 *
 * Looping and skip semantics match TraceWorkload: the trace repeats
 * modulo its record count, and skip(n) advances the cursor without
 * decoding the skipped records. skip is O(1) amortized: the first
 * full pass (whether driven by reads or forced by an early skip)
 * builds the checkpoint index as a side effect of decoding it anyway;
 * after that every skip is one seek plus at most checkpointStride
 * record decodes — and exactly one seek for the fixed-width binary
 * format on an uncompressed file. Gzip inputs seek by
 * inflate-and-discard (zlib has no random access), which is still
 * parse-free and proportional only to the distance from the nearest
 * restart point.
 *
 * Determinism: the decoded stream is a pure function of the file
 * bytes; next()/nextBatch()/skip() interleavings produce identical
 * streams, which is what the byte-identical sweep contract needs.
 */

#ifndef RCACHE_WORKLOAD_STREAMING_TRACE_HH
#define RCACHE_WORKLOAD_STREAMING_TRACE_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/trace_format.hh"
#include "workload/workload.hh"

namespace rcache
{

/** Is transparent .gz input available in this build (zlib found)? */
bool gzipTraceSupported();

class TraceDecoder;

/** See file comment. */
class StreamingTraceWorkload final : public Workload
{
  public:
    /** Decoded records buffered per refill. */
    static constexpr std::size_t chunkRecords = 4096;
    /** Records between seek-index checkpoints. */
    static constexpr std::uint64_t checkpointStride = 8192;
    /** I/O buffer of the underlying byte source. */
    static constexpr std::size_t ioBufferBytes = 256 * 1024;

    /**
     * Open @p spec for streaming. Eagerly decodes the first record so
     * unreadable files and malformed leading records fail here, not
     * mid-run.
     * @param name workload name for reports (the spec as written)
     * @return null with @p err set on failure
     */
    static std::unique_ptr<StreamingTraceWorkload>
    open(const TraceSpec &spec, const std::string &name,
         std::string *err);

    ~StreamingTraceWorkload() override;

    MicroInst next() override;
    void nextBatch(MicroInst *buf, std::size_t n) override;
    void reset() override;
    void skip(std::uint64_t n) override;
    std::string name() const override { return name_; }

    /**
     * Total records in the trace. Known after the first complete
     * pass; calling this earlier forces the remainder of that pass
     * (decode-and-discard, builds the seek index).
     */
    std::uint64_t records();

    /** @name Bounded-memory accounting (for tests)
     * Upper bound of bytes this workload holds across its chunk
     * buffer, I/O buffer, scratch, and seek index — the quantity the
     * streaming-reader test pins against a full materialization.
     */
    /// @{
    std::size_t residentBytes() const;
    /// @}

  private:
    StreamingTraceWorkload(std::unique_ptr<TraceDecoder> decoder,
                           std::string name);

    /** Refill the chunk from the decoder, wrapping at EOF. */
    void refill();
    /** Reposition the decoder at record @p target via the index. */
    void seekToRecord(std::uint64_t target);
    /** Finish the first pass so len_ and the index are complete. */
    void ensureLength();
    /** Decode up to @p n records at the cursor, maintaining the
     *  checkpoint index. EOF returns 0. Malformed input is fatal. */
    std::size_t decodeSome(MicroInst *buf, std::size_t n);

    std::unique_ptr<TraceDecoder> decoder_;
    std::string name_;

    /** Decoded-record buffer and its read window. */
    std::vector<MicroInst> chunk_;
    std::size_t chunkPos_ = 0;
    std::size_t chunkLen_ = 0;

    /** Record index the next next() returns (mod len_ once known). */
    std::uint64_t pos_ = 0;
    /** Record index the decoder will produce next. */
    std::uint64_t cursor_ = 0;
    /** Total records; 0 until the first pass completes. */
    std::uint64_t len_ = 0;

    /** Seek index: entry k locates record k * checkpointStride. */
    struct Checkpoint
    {
        std::uint64_t byteOffset;
        std::uint64_t line;
    };
    std::vector<Checkpoint> checkpoints_;
};

/**
 * Stream @p spec and rewrite it as the native text format (one pass,
 * bounded memory) — the tools/ converter's engine and the round-trip
 * tests' fixture builder.
 * @param limit stop after this many records (0 = whole trace)
 * @return false with @p err set on open/decode failure
 */
bool convertTraceToNative(const TraceSpec &spec, std::ostream &os,
                          std::uint64_t limit, std::string *err);

} // namespace rcache

#endif // RCACHE_WORKLOAD_STREAMING_TRACE_HH
