/**
 * @file
 * The micro-instruction vocabulary shared by the workload generators
 * and the CPU timing models.
 *
 * The timing models are ISA-less: an instruction is its class, its
 * addresses, its execution latency, and its register dependences
 * expressed as *distances* (how many instructions back the producer
 * is), which is all an instruction-driven timing model needs.
 */

#ifndef RCACHE_WORKLOAD_INST_HH
#define RCACHE_WORKLOAD_INST_HH

#include <cstdint>

#include "util/bitops.hh"

namespace rcache
{

/** Instruction classes the timing and energy models distinguish. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    FpAlu,
    Load,
    Store,
    Branch,
};

/** One dynamic instruction. */
struct MicroInst
{
    OpClass op = OpClass::IntAlu;
    /** Instruction address. */
    Addr pc = 0;
    /** Effective address (loads/stores only). */
    Addr effAddr = 0;
    /** Execution latency in cycles (1 for simple ops). */
    std::uint8_t latency = 1;
    /**
     * Dependence distances: this instruction reads the results of the
     * instructions @c dep1 and @c dep2 positions earlier in program
     * order (0 = no dependence).
     */
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    /** Actual direction (branches only). */
    bool taken = false;
    /** Actual target (branches only, taken). */
    Addr target = 0;

    bool operator==(const MicroInst &o) const = default;
};

} // namespace rcache

#endif // RCACHE_WORKLOAD_INST_HH
