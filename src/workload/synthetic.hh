/**
 * @file
 * Synthetic SPEC-like workload generator.
 *
 * The experiments consume only the *locality and phase structure* of a
 * reference stream, so each SPEC application the paper evaluates is
 * replaced by a deterministic generator parameterized to the
 * cache-behaviour class the paper reports for it (working-set sizes,
 * conflict intensity, phase variation). The 12 named profiles live in
 * workload/profiles.hh; the mapping from each parameter to the paper's
 * per-application observations is documented there.
 *
 * Generator structure:
 *  - instruction stream: basic blocks of geometric length ending in a
 *    branch; taken branches jump to a random 16-byte-aligned offset in
 *    the current hot-code footprint, so the i-cache working set equals
 *    the footprint. An optional conflict layout spreads the footprint
 *    over chunks 16 KB apart to create set conflicts.
 *  - data stream: loads/stores pick a region by weight and access it
 *    either cyclically (streaming with reuse period = region size) or
 *    uniformly at random (smooth working-set behaviour); an optional
 *    alias set of blocks 16 KB apart creates associativity pressure
 *    that capacity alone cannot relieve.
 *  - phase schedules scale the footprint/region sizes over time:
 *    constant, periodic square wave, or a deterministic drifting walk.
 *  - dependences: geometric register-dependence distances plus a
 *    load-use chance, giving the OoO core realistic ILP to hide miss
 *    latency with.
 */

#ifndef RCACHE_WORKLOAD_SYNTHETIC_HH
#define RCACHE_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"
#include "workload/workload.hh"

namespace rcache
{

/** How a footprint scale factor evolves over the run. */
enum class PhaseKind
{
    Constant,
    /** Square wave between lo and hi every periodInsts. */
    Periodic,
    /** Deterministic pseudo-random walk in [lo, hi], stepping every
     *  periodInsts. */
    Drift,
};

/** A phase schedule: scale factor applied to a footprint. */
struct PhaseSpec
{
    PhaseKind kind = PhaseKind::Constant;
    double lo = 1.0;
    double hi = 1.0;
    std::uint64_t periodInsts = 200000;
    /** Periodic only: fraction of each period spent at @c hi. */
    double dutyHi = 0.5;
};

/** One data region. */
struct DataRegion
{
    /** Nominal size in bytes (scaled by the data phase). */
    std::uint64_t bytes;
    /** Relative probability of an access landing here. */
    double weight;
    /** Cyclic walk stride in bytes; 0 selects random. */
    std::uint64_t stride = 0;
    /**
     * Reuse skew for random regions: @c hotWeight of accesses fall in
     * the first @c hotFrac of the region. Real reference streams are
     * strongly skewed; without this, miss ratio vs. cache size is a
     * cliff and no downsizing point is ever profitable.
     */
    double hotFrac = 0.2;
    double hotWeight = 0.85;
    /** Whether the data phase schedule scales this region. */
    bool phased = true;
};

/** Full parameterization of one synthetic application. */
struct BenchmarkProfile
{
    std::string name;

    /** @name Instruction mix (fractions; remainder is plain int ALU) */
    /// @{
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double fpFrac = 0.0;
    /// @}

    /** @name Data side */
    /// @{
    std::vector<DataRegion> regions;
    PhaseSpec dataPhase;
    /** Fraction of data accesses hitting the alias set. */
    double dataConflictFrac = 0.0;
    /** Distinct blocks in the alias set (0 disables). */
    unsigned dataConflictBlocks = 0;
    /// @}

    /** @name Instruction side */
    /// @{
    /** Hot code bytes (the i-cache working set). */
    std::uint64_t codeFootprint = 8192;
    PhaseSpec codePhase;
    /**
     * Jump-target skew: @c codeHotWeight of taken branches land in the
     * first @c codeHotFrac of the footprint (hot loops), the rest
     * anywhere. Smooths the miss-vs-size curve like real code.
     */
    double codeHotFrac = 0.3;
    double codeHotWeight = 0.7;
    /**
     * Fraction of taken branches that call into one of
     * @c codeConflictBlocks 256-byte "library" chunks spaced 16 KB
     * apart (set-aliasing: pressure that only associativity, not
     * capacity, can absorb).
     */
    double codeConflictFrac = 0.0;
    unsigned codeConflictBlocks = 0;
    double takenBias = 0.6;
    /// @}

    /** @name Dependences */
    /// @{
    double depChance = 0.5;
    unsigned maxDepDist = 8;
    /** Chance an instruction consumes the most recent load. */
    double loadUseChance = 0.3;
    /// @}

    std::uint8_t fpLatency = 4;
    std::uint64_t seed = 1;

    /**
     * Non-empty: this profile replays an on-disk trace (the full
     * "trace:PATH[:FORMAT]" spec) instead of generating synthetically,
     * and every generator field above is unused. Instantiate through
     * makeWorkload (workload_factory.hh), never SyntheticWorkload.
     */
    std::string traceSpec;
};

/** Deterministic stream generator; see file comment. */
class SyntheticWorkload final : public Workload
{
  public:
    explicit SyntheticWorkload(const BenchmarkProfile &profile);

    MicroInst next() override;
    /**
     * Tight batch fill: one virtual dispatch for the whole batch, the
     * per-instruction work runs through the non-virtual generator with
     * the phase caches hot. Bit-identical to n next() calls.
     */
    void nextBatch(MicroInst *__restrict buf,
                   std::size_t n) override;
    void reset() override;
    /**
     * O(1) fast-forward: the phase clock jumps, the rng is re-seeded
     * as a deterministic function of (seed, new position), and the
     * region cursors and code offset stay where they are. The skipped
     * span's instructions are never materialized, so a sampled run's
     * fast-forward costs nothing per skipped instruction.
     */
    void skip(std::uint64_t n) override;
    std::string name() const override { return profile_.name; }

    const BenchmarkProfile &profile() const { return profile_; }
    std::uint64_t generated() const { return instCount_; }

    /** Current scaled code footprint in bytes (for tests). */
    std::uint64_t currentCodeFootprint() const;
    /** Current scaled size of region @p r in bytes (for tests). */
    std::uint64_t currentRegionBytes(unsigned r) const;

    /** Stride separating aliasing chunks/blocks (16 KB). */
    static constexpr std::uint64_t aliasStride = 16 * 1024;

  private:
    /**
     * The per-instruction generator state, grouped so nextBatch can
     * run a whole batch on a stack-local copy: the copy's address
     * never escapes, so the compiler keeps these words (touched
     * several times per generated instruction) in registers instead
     * of re-loading and re-storing members through `this`.
     */
    struct HotState
    {
        Rng rng;
        std::uint64_t instCount;
        std::uint64_t codeOffset;
        std::uint64_t blockRemaining;
        /** Non-negative: executing alias chunk k; negative: main
         *  code. */
        int aliasChunk;
        unsigned lastLoadDist;
    };

    HotState loadHotState() const;
    void storeHotState(const HotState &st);

    double phaseFactor(const PhaseSpec &spec) const;
    Addr dataAddr(HotState &st);

    /** Generate one instruction (the shared body of next() and
     *  nextBatch(); non-virtual so batch fills inline it). */
    void genOne(MicroInst &inst, HotState &st);

    /**
     * Phase-scaled values only change at phase boundaries, but the
     * straightforward computation (a 64-bit modulo plus floating
     * point) sits on the per-instruction hot path. These caches hold
     * the values until the instruction count reaches the next
     * boundary; the cached values are bit-identical to recomputing,
     * so the generated stream is unchanged. The code cache covers the
     * footprint and its hot-jump span; the data cache covers every
     * region's quantized size and hot span.
     */
    std::uint64_t cachedCodeFootprint(std::uint64_t inst_count);
    void refreshDataGeom(std::uint64_t inst_count);
    double phaseFactorAt(const PhaseSpec &spec,
                         std::uint64_t inst_count) const;
    void invalidatePhaseCaches()
    {
        codeFpValidUntil_ = 0;
        dataGeomValidUntil_ = 0;
    }

    /** Phase-cached derived geometry of one data region. */
    struct RegionGeom
    {
        /** Quantized scaled size in bytes. */
        std::uint64_t bytes;
        /** Skewed-reuse hot-head span in bytes. */
        std::uint64_t hotSpan;
    };

    BenchmarkProfile profile_;
    Rng rng_;

    std::uint64_t codeFpCache_ = 0;
    std::uint64_t codeHotSpanCache_ = 0;
    std::uint64_t codeFpValidUntil_ = 0;
    std::vector<RegionGeom> regionGeom_;
    std::uint64_t dataGeomValidUntil_ = 0;

    /** @name Per-profile constants hoisted out of genOne
     *
     * Bernoulli draws against a fixed probability go through
     * Rng::chanceThr with these precomputed thresholds (exactly
     * equivalent to Rng::chance, one integer compare per draw); the
     * per-PC branch bias is an 8-bit hash, so all 256 clamped biases
     * are thresholded up front too.
     */
    /// @{
    std::vector<Addr> regionBases_;
    std::vector<std::uint64_t> thrRegionHot_;
    std::uint64_t thrDataConflict_ = 0;
    std::uint64_t thrCodeConflict_ = 0;
    std::uint64_t thrCodeHotWeight_ = 0;
    std::uint64_t thrDep_ = 0;
    std::uint64_t thrLoadUse_ = 0;
    std::uint64_t thrBranchFrac_ = 0;
    std::uint64_t thrDepDist_ = 0;
    std::uint64_t thrLoadOp_ = 0;
    std::uint64_t thrMemOp_ = 0;
    std::uint64_t thrMemFpOp_ = 0;
    std::uint64_t biasThr_[256] = {};
    double memFrac_ = 0;
    double memFpFrac_ = 0;
    /// @}

    std::uint64_t instCount_ = 0;
    std::uint64_t codeOffset_ = 0;
    /** Non-negative: executing alias chunk k; negative: main code. */
    int aliasChunk_ = -1;
    std::uint64_t blockRemaining_ = 4;
    std::vector<std::uint64_t> cursors_;
    unsigned lastLoadDist_ = 255;
    double totalWeight_ = 0;
};

} // namespace rcache

#endif // RCACHE_WORKLOAD_SYNTHETIC_HH
