#include "workload/profiles.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workload/trace_format.hh"
#include "workload/workload_factory.hh"

namespace rcache
{

namespace
{

constexpr std::uint64_t kB = 1024;

/** Integer-benchmark instruction mix. */
void
intMix(BenchmarkProfile &p)
{
    p.loadFrac = 0.26;
    p.storeFrac = 0.12;
    p.branchFrac = 0.16;
    p.fpFrac = 0.0;
    p.loadUseChance = 0.40;
    p.depChance = 0.55;
}

/** Floating-point-benchmark instruction mix. */
void
fpMix(BenchmarkProfile &p)
{
    p.loadFrac = 0.30;
    p.storeFrac = 0.08;
    p.branchFrac = 0.07;
    p.fpFrac = 0.30;
    p.loadUseChance = 0.15;
    p.depChance = 0.45;
}

} // namespace

std::vector<BenchmarkProfile>
spec2000Suite()
{
    std::vector<BenchmarkProfile> suite;

    // ammp (FP): small constant working sets on both sides. Paper:
    // d-cache benefits from selective-sets' small minimum size
    // (Fig 5a); i-cache likewise (Fig 5b); constant size under dynamic
    // resizing (Sec 4.2.1/4.2.2).
    {
        BenchmarkProfile p;
        p.name = "ammp";
        fpMix(p);
        p.regions = {{3 * kB, 0.85, 0}, {1 * kB, 0.15, 0}};
        p.codeFootprint = 3 * kB;
        p.seed = 101;
        suite.push_back(p);
    }

    // applu (FP): small constant d-side working set; i-side working
    // set alternates periodically (paper: periodic i-cache variation,
    // Sec 4.2.2); low conflict, so selective-ways' narrower way reads
    // dissipate less at equal size (Fig 5b discussion).
    {
        BenchmarkProfile p;
        p.name = "applu";
        fpMix(p);
        p.regions = {{4 * kB, 0.9, 0}, {1 * kB, 0.1, 0}};
        p.codeFootprint = 12 * kB;
        p.codePhase = {PhaseKind::Periodic, 0.35, 1.0, 240000, 0.4};
        p.seed = 102;
        suite.push_back(p);
    }

    // apsi (FP): moderate d working set *between* offered sizes
    // (emulation type, Sec 4.2.1) with an alias set that needs the
    // full associativity (paper: benefits from selective-sets
    // maintaining set-associativity); periodic i-side variation with
    // conflicts (Fig 5b: "requires set-associativity").
    {
        BenchmarkProfile p;
        p.name = "apsi";
        fpMix(p);
        p.regions = {{8 * kB, 0.8, 0}, {1536, 0.2, 0}};
        p.dataConflictFrac = 0.03;
        p.dataConflictBlocks = 4;
        p.codeFootprint = 8 * kB;
        p.codeConflictFrac = 0.10;
        p.codeConflictBlocks = 4;
        p.codePhase = {PhaseKind::Periodic, 0.5, 1.0, 260000, 0.4};
        p.seed = 103;
        suite.push_back(p);
    }

    // compress (INT): d working set ~20 KB — between the 16K and 32K
    // selective-sets points, the paper's showcase for selective-ways'
    // granularity at large sizes (Fig 5a) and for emulation + varying
    // behaviour under dynamic resizing; tiny constant i footprint.
    {
        BenchmarkProfile p;
        p.name = "compress";
        intMix(p);
        p.regions = {{18 * kB, 0.85, 0}, {2 * kB, 0.15, 0}};
        p.dataPhase = {PhaseKind::Periodic, 0.5, 1.0, 250000, 0.4};
        p.codeFootprint = 2 * kB;
        p.seed = 104;
        suite.push_back(p);
    }

    // gcc (INT): moderate, drifting d working set with conflicts
    // (varying type); i footprint just under 32 KB, so static
    // resizing cannot downsize (Fig 5b: "working sets larger than
    // 32K") while dynamic resizing emulates (Sec 4.2.2).
    {
        BenchmarkProfile p;
        p.name = "gcc";
        intMix(p);
        p.regions = {{11 * kB, 0.7, 0}, {2 * kB, 0.3, 0}};
        p.dataPhase = {PhaseKind::Drift, 0.7, 1.15, 150000};
        p.dataConflictFrac = 0.03;
        p.dataConflictBlocks = 4;
        p.codeFootprint = 30 * kB;
        p.codePhase = {PhaseKind::Drift, 0.85, 1.05, 200000};
        p.seed = 105;
        suite.push_back(p);
    }

    // ijpeg (INT): small-to-moderate d working set between offered
    // sizes (emulation) with mild conflicts; small periodic i
    // footprint (paper: periodic i-cache variation).
    {
        BenchmarkProfile p;
        p.name = "ijpeg";
        intMix(p);
        p.regions = {{7 * kB, 0.85, 0}, {1 * kB, 0.15, 0}};
        p.dataConflictFrac = 0.025;
        p.dataConflictBlocks = 3;
        p.codeFootprint = 6 * kB;
        p.codePhase = {PhaseKind::Periodic, 0.4, 1.0, 220000, 0.45};
        p.seed = 106;
        suite.push_back(p);
    }

    // m88ksim (INT): small constant working sets on both sides
    // (paper: constant type, takes the small selective-sets minimum).
    {
        BenchmarkProfile p;
        p.name = "m88ksim";
        intMix(p);
        p.regions = {{3 * kB, 0.9, 0}, {1 * kB, 0.1, 0}};
        p.codeFootprint = 3 * kB;
        p.seed = 107;
        suite.push_back(p);
    }

    // su2cor (FP): periodic d working set (paper: "periodic variation
    // in working set size as execution phases repeat") with an alias
    // set (needs associativity); constant conflict-heavy i footprint.
    {
        BenchmarkProfile p;
        p.name = "su2cor";
        fpMix(p);
        p.regions = {{26 * kB, 0.85, 0}, {2 * kB, 0.15, 0}};
        p.regions[0].hotFrac = 0.15;
        p.regions[0].hotWeight = 0.75;
        p.regions[1].phased = false;
        p.dataPhase = {PhaseKind::Periodic, 0.2, 1.0, 300000, 0.3};
        p.dataConflictFrac = 0.02;
        p.dataConflictBlocks = 4;
        p.codeFootprint = 7 * kB;
        p.codeConflictFrac = 0.10;
        p.codeConflictBlocks = 4;
        p.seed = 108;
        suite.push_back(p);
    }

    // swim (FP): d side streams cyclically through ~28 KB — fits at
    // 32K, thrashes below, so downsizing creates a miss cliff and
    // static resizing leaves the d-cache alone (Fig 5a: "no
    // downsizing"); tiny constant i footprint.
    {
        BenchmarkProfile p;
        p.name = "swim";
        fpMix(p);
        p.regions = {{28 * kB, 0.9, 32}, {1 * kB, 0.1, 0}};
        p.codeFootprint = 2 * kB;
        p.seed = 109;
        suite.push_back(p);
    }

    // tomcatv (FP): d working set ~16 KB with conflicts — both
    // organizations reach the same size but selective-ways pays more
    // conflict misses there (Fig 5a discussion); i footprint just
    // under 32 KB (no static downsizing; dynamic emulation type).
    {
        BenchmarkProfile p;
        p.name = "tomcatv";
        fpMix(p);
        p.regions = {{12 * kB, 0.8, 32}, {2 * kB, 0.2, 0}};
        p.dataConflictFrac = 0.03;
        p.dataConflictBlocks = 4;
        p.codeFootprint = 28 * kB;
        p.codePhase = {PhaseKind::Drift, 0.9, 1.05, 250000};
        p.seed = 110;
        suite.push_back(p);
    }

    // vortex (INT): moderate drifting d working set with conflicts
    // (varying type); i footprint ~20 KB — between 16K and 32K, the
    // selective-ways-granularity case for i-caches (Fig 5b) and
    // dynamic emulation type (Sec 4.2.2).
    {
        BenchmarkProfile p;
        p.name = "vortex";
        intMix(p);
        p.regions = {{12 * kB, 0.75, 0}, {2500, 0.25, 0}};
        p.dataPhase = {PhaseKind::Drift, 0.7, 1.15, 170000};
        p.dataConflictFrac = 0.03;
        p.dataConflictBlocks = 4;
        p.codeFootprint = 18 * kB;
        p.codeHotWeight = 0.8;
        p.codePhase = {PhaseKind::Drift, 0.9, 1.05, 210000};
        p.seed = 111;
        suite.push_back(p);
    }

    // vpr (INT): moderate d working set with a strong alias set
    // (paper: benefits from selective-sets maintaining associativity)
    // and drifting variation; conflict-heavy i footprint ~10 KB.
    {
        BenchmarkProfile p;
        p.name = "vpr";
        intMix(p);
        p.regions = {{10 * kB, 0.8, 0}, {2 * kB, 0.2, 0}};
        p.dataPhase = {PhaseKind::Drift, 0.7, 1.2, 160000};
        p.dataConflictFrac = 0.04;
        p.dataConflictBlocks = 4;
        p.codeFootprint = 10 * kB;
        p.codeConflictFrac = 0.10;
        p.codeConflictBlocks = 4;
        p.seed = 112;
        suite.push_back(p);
    }

    return suite;
}

BenchmarkProfile
profileByName(const std::string &name)
{
    for (auto &p : spec2000Suite())
        if (p.name == name)
            return p;
    rc_fatal("unknown benchmark profile: " + name);
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &p : spec2000Suite())
        names.push_back(p.name);
    return names;
}

std::vector<std::string>
splitPlusList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t end = text.find('+', begin);
        if (end == std::string::npos)
            end = text.size();
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

std::optional<std::vector<BenchmarkProfile>>
mixByName(const std::string &name, std::string *err)
{
    const std::vector<BenchmarkProfile> suite = spec2000Suite();
    std::vector<BenchmarkProfile> mix;
    for (const std::string &item : splitPlusList(name)) {
        if (isTraceSpec(item)) {
            BenchmarkProfile p;
            if (!traceProfileFromSpec(item, &p, err))
                return std::nullopt;
            mix.push_back(std::move(p));
            continue;
        }
        const auto it =
            std::find_if(suite.begin(), suite.end(),
                         [&](const BenchmarkProfile &p) {
                             return p.name == item;
                         });
        if (item.empty() || it == suite.end()) {
            if (err)
                *err = item.empty()
                           ? "mix '" + name +
                                 "' has an empty component"
                           : "unknown app '" + item +
                                 "' (see 'rcache-sim list-apps')";
            return std::nullopt;
        }
        mix.push_back(*it);
    }
    return mix;
}

} // namespace rcache
