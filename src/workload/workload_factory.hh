/**
 * @file
 * The one seam that turns a BenchmarkProfile into a runnable Workload.
 *
 * A profile is either synthetic (the generator parameterization in
 * synthetic.hh) or a trace replay (traceSpec set, everything else
 * unused). Every consumer of profiles — the sweep runner, the
 * analytic engine's reference pass, the multi-core address-space
 * wrapper, the CLI — builds its stream through makeWorkload so trace
 * specs work anywhere an app name does.
 */

#ifndef RCACHE_WORKLOAD_WORKLOAD_FACTORY_HH
#define RCACHE_WORKLOAD_WORKLOAD_FACTORY_HH

#include <memory>
#include <string>

#include "workload/synthetic.hh"

namespace rcache
{

/** Does @p p replay a trace (vs. generate synthetically)? */
bool isTraceProfile(const BenchmarkProfile &p);

/**
 * Build the profile representing one "trace:PATH[:FORMAT]" spec.
 * Validates the spec syntax only; the file is opened by makeWorkload.
 * @return false with @p err set on a malformed spec
 */
bool traceProfileFromSpec(const std::string &spec,
                          BenchmarkProfile *out, std::string *err);

/**
 * Instantiate the workload @p p describes. Synthetic profiles build a
 * SyntheticWorkload; trace profiles open a StreamingTraceWorkload.
 * A trace that fails to open or starts malformed is a user error
 * (fatal with the file diagnostic) — spec syntax was validated when
 * the profile was resolved.
 */
std::unique_ptr<Workload> makeWorkload(const BenchmarkProfile &p);

} // namespace rcache

#endif // RCACHE_WORKLOAD_WORKLOAD_FACTORY_HH
