/**
 * @file
 * Trace file I/O: record a workload's stream to a portable text
 * format and replay it later, so users can drive the simulator with
 * their own reference streams instead of the synthetic profiles.
 *
 * Format: one instruction per line,
 *   <op> <pc-hex> <eff-addr-hex> <latency> <dep1> <dep2> <taken>
 * with op one of I F L S B; taken branches append a hex target;
 * '#' starts a comment line.
 *
 * Parsing is strict: every field must be consumed exactly (no
 * trailing junk after a valid numeric prefix), out-of-range values
 * (latency/deps above 255, hex wider than 64 bits) are rejected
 * instead of silently wrapped, and negative values never parse (the
 * numeric fields are unsigned). Errors carry `file:line:` prefixes so
 * the CLI can report them one-line and exit 2.
 */

#ifndef RCACHE_WORKLOAD_TRACE_IO_HH
#define RCACHE_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace rcache
{

/** Record @p count instructions of @p source into @p os. */
void writeTrace(std::ostream &os, Workload &source,
                std::uint64_t count);

/** Serialize one instruction as a native-format trace line. */
void writeTraceLine(std::ostream &os, const MicroInst &m);

/**
 * Parse one native-format trace line (comments/blank lines are the
 * caller's business). Strict: the whole line must be consumed.
 * @return false with @p why set (no line/file prefix) on a malformed
 *         line
 */
bool parseTraceLine(const std::string &line, MicroInst &m,
                    std::string *why);

/**
 * Parse a trace stream strictly. On a malformed line stops and
 * returns false with @p err set to "<file>:<line>: <why>"; @p file is
 * only used for the diagnostic.
 */
bool readTraceStrict(std::istream &is, const std::string &file,
                     std::vector<MicroInst> &out, std::string *err);

/**
 * Parse a trace stream. Malformed lines are a user error (fatal).
 * @return the parsed instructions, in order
 */
std::vector<MicroInst> readTrace(std::istream &is);

/** Convenience: read a trace file into a replayable workload.
 *  Fatal if the file cannot be opened or parsed. */
TraceWorkload loadTraceWorkload(const std::string &path,
                                const std::string &name = "trace");

/** Single-character opcode used in the trace format. */
char opClassCode(OpClass op);
/** Inverse of opClassCode; fatal on an unknown code. */
OpClass opClassFromCode(char code);

} // namespace rcache

#endif // RCACHE_WORKLOAD_TRACE_IO_HH
