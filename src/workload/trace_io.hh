/**
 * @file
 * Trace file I/O: record a workload's stream to a portable text
 * format and replay it later, so users can drive the simulator with
 * their own reference streams instead of the synthetic profiles.
 *
 * Format: one instruction per line,
 *   <op> <pc-hex> <eff-addr-hex> <latency> <dep1> <dep2> <taken>
 * with op one of I F L S B; '#' starts a comment line.
 */

#ifndef RCACHE_WORKLOAD_TRACE_IO_HH
#define RCACHE_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace rcache
{

/** Record @p count instructions of @p source into @p os. */
void writeTrace(std::ostream &os, Workload &source,
                std::uint64_t count);

/**
 * Parse a trace stream. Malformed lines are a user error (fatal).
 * @return the parsed instructions, in order
 */
std::vector<MicroInst> readTrace(std::istream &is);

/** Convenience: read a trace file into a replayable workload.
 *  Fatal if the file cannot be opened or parsed. */
TraceWorkload loadTraceWorkload(const std::string &path,
                                const std::string &name = "trace");

/** Single-character opcode used in the trace format. */
char opClassCode(OpClass op);
/** Inverse of opClassCode; fatal on an unknown code. */
OpClass opClassFromCode(char code);

} // namespace rcache

#endif // RCACHE_WORKLOAD_TRACE_IO_HH
