/**
 * @file
 * Trace-format vocabulary and the "trace:PATH[:FORMAT]" workload spec
 * grammar shared by the CLI, the scenario layer, and the streaming
 * readers.
 *
 * Three on-disk formats are understood:
 *
 *  - `native`  — the line-oriented rcache text format (trace_io.hh).
 *  - `rocksdb` — RocksDB block-cache trace rows: comma-separated
 *    `access_time,block_id,block_type,block_size,cf_id,cf_name,level,
 *    fd,caller,no_insert,get_id,key_id,kv_size[,...]` (the
 *    block_cache_pysim layout). Each row becomes one 64-byte-granular
 *    Load of `block_id`; the caller enum seeds the pc so the i-side
 *    stream is deterministic.
 *  - `lcs` — libCacheSim-style packed binary records, 24 bytes
 *    little-endian each: u32 timestamp, u64 obj_id, u32 obj_size,
 *    i64 next_access_vtime. Each record becomes one 64-byte-granular
 *    Load of `obj_id`.
 *
 * A `.gz` suffix selects transparent gzip decompression (available
 * when the build found zlib; rejected with a clear error otherwise).
 * When the FORMAT component is omitted it is inferred from the file
 * extension after stripping `.gz`: `.txt`/`.trace` -> native,
 * `.csv` -> rocksdb, `.bin`/`.lcs` -> lcs.
 */

#ifndef RCACHE_WORKLOAD_TRACE_FORMAT_HH
#define RCACHE_WORKLOAD_TRACE_FORMAT_HH

#include <string>

namespace rcache
{

/** On-disk trace encodings the streaming readers understand. */
enum class TraceFormat
{
    Native,
    Rocksdb,
    LcsBin,
};

/** Canonical spelling ("native", "rocksdb", "lcs"). */
std::string traceFormatName(TraceFormat fmt);

/** Inverse of traceFormatName. @return false on an unknown name */
bool traceFormatByName(const std::string &name, TraceFormat *out);

/** A parsed "trace:PATH[:FORMAT]" workload spec. */
struct TraceSpec
{
    /** File path as written (resolved against the process CWD). */
    std::string path;
    TraceFormat format = TraceFormat::Native;
    /** Whether the file is gzip-compressed (path ends ".gz"). */
    bool gzip = false;
};

/** Does @p name use the trace workload-spec grammar? */
bool isTraceSpec(const std::string &name);

/**
 * Parse a "trace:PATH[:FORMAT]" spec (grammar in the file comment).
 * Pure syntax: the file is not opened.
 * @return false with @p err set on a malformed spec or an
 *         uninferrable format
 */
bool parseTraceSpec(const std::string &spec, TraceSpec *out,
                    std::string *err);

} // namespace rcache

#endif // RCACHE_WORKLOAD_TRACE_FORMAT_HH
