#include "runner/thread_pool.hh"

#include <algorithm>

namespace rcache
{

namespace
{

/** Index of the pool worker the current thread is, or -1. Lets a
 *  task submitted from inside the pool land on its own queue. */
thread_local int tls_worker_index = -1;

} // namespace

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = hardwareThreads();
    num_threads = std::min(num_threads, maxThreads);
    queues_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(Task task)
{
    std::size_t idx;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        ++queued_;
        ++pending_;
        idx = tls_worker_index >= 0
                  ? static_cast<std::size_t>(tls_worker_index)
                  : nextQueue_++ % queues_.size();
    }
    {
        std::lock_guard<std::mutex> qlk(queues_[idx]->mtx);
        queues_[idx]->tasks.push_back(std::move(task));
    }
    workCv_.notify_one();
}

bool
ThreadPool::popLocal(unsigned self, Task &out)
{
    auto &q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mtx);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool
ThreadPool::steal(unsigned self, Task &out)
{
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        auto &q = *queues_[(self + k) % n];
        std::lock_guard<std::mutex> lk(q.mtx);
        if (q.tasks.empty())
            continue;
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    tls_worker_index = static_cast<int>(self);
    for (;;) {
        Task task;
        if (popLocal(self, task) || steal(self, task)) {
            {
                std::lock_guard<std::mutex> lk(mtx_);
                --queued_;
            }
            task();
            {
                std::lock_guard<std::mutex> lk(mtx_);
                if (--pending_ == 0)
                    idleCv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lk(mtx_);
        workCv_.wait(lk, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(mtx_);
    idleCv_.wait(lk, [this] { return pending_ == 0; });
}

} // namespace rcache
