/**
 * @file
 * Work-stealing thread pool for the sweep runner.
 *
 * Each worker owns a deque; submit() distributes tasks round-robin
 * (or onto the submitting worker's own queue, enabling recursive
 * submission), workers pop their own queue LIFO and steal FIFO from
 * siblings when empty. Sweep jobs are coarse (one full simulated run
 * each, milliseconds to seconds), so queue contention is irrelevant;
 * stealing is what keeps every core busy through the tail of an
 * unevenly-sized batch.
 */

#ifndef RCACHE_RUNNER_THREAD_POOL_HH
#define RCACHE_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rcache
{

/** See file comment. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param num_threads worker count; 0 selects the hardware
     *                    concurrency. Clamped to maxThreads so a
     *                    wrapped negative (e.g. "-1" parsed
     *                    unsigned) cannot request billions of
     *                    threads.
     */
    explicit ThreadPool(unsigned num_threads);

    /** Hard upper bound on workers per pool. */
    static constexpr unsigned maxThreads = 256;

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; runs on some worker, eventually. */
    void submit(Task task);

    /** Block until every submitted task has finished running. */
    void waitIdle();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static unsigned hardwareThreads();

  private:
    struct WorkerQueue
    {
        std::mutex mtx;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool popLocal(unsigned self, Task &out);
    bool steal(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    /** Guards the counters and both condition variables. */
    std::mutex mtx_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    /** Tasks sitting in some queue, not yet picked up. */
    std::size_t queued_ = 0;
    /** Tasks submitted and not yet finished (queued + running). */
    std::size_t pending_ = 0;
    bool stop_ = false;

    std::size_t nextQueue_ = 0;
};

} // namespace rcache

#endif // RCACHE_RUNNER_THREAD_POOL_HH
