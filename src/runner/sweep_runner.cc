#include "runner/sweep_runner.hh"

#include <algorithm>

#include "analytic/analytic_engine.hh"
#include "sim/multi_core_system.hh"
#include "telemetry/trace_events.hh"
#include "workload/workload_factory.hh"

namespace rcache
{

RunResult
executeRunJob(const RunJob &job)
{
    // A single core would silently simulate only mixProfiles[0];
    // every layer above validates this (ParamSpace::build, the CLI),
    // so reaching here is a caller bug.
    rc_assert(job.cfg.cores > 1 || job.mixProfiles.size() <= 1);
    if (job.engine.analytic())
        return runAnalyticJob(job);
    if (job.cfg.cores > 1) {
        MultiCoreSystem sys(job.cfg);
        const std::vector<BenchmarkProfile> mix =
            job.mixProfiles.empty()
                ? std::vector<BenchmarkProfile>{job.profile}
                : job.mixProfiles;
        return sys
            .run(mix, job.insts, job.il1, job.dl1, job.engine,
                 job.telemetry)
            .aggregate;
    }
    const std::unique_ptr<Workload> wl = makeWorkload(job.profile);
    System sys(job.cfg);
    return sys.run(*wl, job.insts, job.il1, job.dl1, job.engine,
                   job.telemetry);
}

SweepRunner::SweepRunner(unsigned num_jobs)
    : parallelism_(std::min(num_jobs == 0
                                ? ThreadPool::hardwareThreads()
                                : num_jobs,
                            ThreadPool::maxThreads))
{
    // Eager so concurrent run() calls on a shared runner never race
    // on pool creation.
    if (parallelism_ > 1)
        pool_ = std::make_unique<ThreadPool>(parallelism_);
}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::reportProgress(std::size_t done, std::size_t total,
                            const RunJob &job) const
{
    if (!progress_)
        return;
    std::lock_guard<std::mutex> lk(progressMtx_);
    progress_(done, total, job);
}

std::vector<RunResult>
SweepRunner::runSerial(const std::vector<RunJob> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        results[i] = executeRunJob(jobs[i]);
    return results;
}

RunResult
SweepRunner::tracedExecute(const RunJob &job) const
{
    if (!trace_)
        return executeRunJob(job);
    const auto begin = trace_->now();
    RunResult res = executeRunJob(job);
    TraceEventRecorder::Args args{{"label", job.label}};
    if (!job.tracePoint.empty())
        args.emplace_back("point", job.tracePoint);
    trace_->completeSpan(job.label, begin, trace_->now(),
                         std::move(args));
    return res;
}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunJob> &jobs) const
{
    std::vector<RunResult> results(jobs.size());

    if (parallelism_ <= 1 || jobs.size() <= 1) {
        std::size_t done = 0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (cancelRequested())
                break;
            results[i] = tracedExecute(jobs[i]);
            reportProgress(++done, jobs.size(), jobs[i]);
        }
        return results;
    }

    // done_ is shared across job tasks only for progress display;
    // results_[i] is written exclusively by job i's task.
    auto done = std::make_shared<std::atomic<std::size_t>>(0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool_->submit([this, &jobs, &results, done, i] {
            if (cancelRequested())
                return;
            results[i] = tracedExecute(jobs[i]);
            reportProgress(done->fetch_add(1) + 1, jobs.size(),
                           jobs[i]);
        });
    }
    pool_->waitIdle();
    return results;
}

} // namespace rcache
