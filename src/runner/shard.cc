#include "runner/shard.hh"

#include "util/numformat.hh"

namespace rcache
{

std::optional<ShardSpec>
ShardSpec::parse(const std::string &text, std::string *err)
{
    const auto failWith = [&](const std::string &why) {
        if (err)
            *err = "shard wants i/N with 0 <= i < N, got '" + text +
                   "'" + (why.empty() ? "" : " (" + why + ")");
        return std::nullopt;
    };

    const std::size_t slash = text.find('/');
    if (slash == std::string::npos)
        return failWith("");
    unsigned long long i = 0, n = 0;
    if (!parseU64Strict(text.substr(0, slash), i) ||
        !parseU64Strict(text.substr(slash + 1), n))
        return failWith("");
    if (n == 0)
        return failWith("N must be >= 1");
    if (i >= n)
        return failWith("index out of range");
    ShardSpec spec;
    spec.index = static_cast<std::size_t>(i);
    spec.count = static_cast<std::size_t>(n);
    return spec;
}

} // namespace rcache
