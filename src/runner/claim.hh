/**
 * @file
 * Cooperative sweep orchestration: a manifest directory plus an
 * atomic shard-claim protocol, so N independent processes (or
 * machines over a shared filesystem) drain one scenario without a
 * coordinator.
 *
 * A manifest directory holds the scenario's canonical text
 * (MANIFEST.scn), a small MANIFEST.meta (mode + shard count), and
 * one set of files per work unit:
 *
 *   <unit>.lease   held by the worker currently running the unit
 *   <unit>.csv     the unit's output (written tmp + rename)
 *   <unit>.done    commit marker: the output is complete
 *
 * Claiming is an O_CREAT|O_EXCL create of the lease file — the
 * filesystem's atomicity is the whole locking story, so the protocol
 * needs no daemon and survives worker crashes: a lease older than
 * the timeout with no done marker is *stale*, and any worker may
 * take it over by atomically renaming it aside (exactly one
 * contender's rename succeeds) and claiming afresh. Long-running
 * workers heartbeat their lease (mtime bump) per completed chunk so
 * live shards are never stolen.
 *
 * Unit outputs commit via write-to-tmp + rename before the done
 * marker appears, so readers never observe a partial CSV. The merge
 * tool (search/sweep_merge.hh) re-interleaves the committed shard
 * CSVs into the byte-identical unsharded report.
 */

#ifndef RCACHE_RUNNER_CLAIM_HH
#define RCACHE_RUNNER_CLAIM_HH

#include <optional>
#include <string>

namespace rcache
{

/** What a manifest directory describes. */
struct ManifestInfo
{
    /** Canonical scenario text (ScenarioSpec::printToString). */
    std::string scenarioText;
    /** Work units the scenario is split into. */
    unsigned shards = 0;
    /** "sweep" (one unit per shard) or "tune" (one unit per
     *  round x shard; see search/adaptive_search.hh). */
    std::string mode = "sweep";
};

/**
 * Create @p dir (and parents) and write its manifest. Exactly one
 * concurrent creator wins; losers see the existing manifest via
 * readManifest and must verify it matches what they wanted.
 * @return false with @p err set when the manifest already exists or
 * cannot be written.
 */
bool writeManifest(const std::string &dir, const ManifestInfo &info,
                   std::string *err);

/**
 * Read a manifest directory; nullopt with @p err on a missing or
 * malformed manifest. @p corrupt (optional) distinguishes the two
 * failures: true means the directory *has* manifest files but they
 * are damaged (torn meta, garbage, missing scenario text) — a
 * worker holding the scenario may quarantineManifest() and
 * re-create; false means there is simply no manifest yet.
 */
std::optional<ManifestInfo> readManifest(const std::string &dir,
                                         std::string *err,
                                         bool *corrupt = nullptr);

/**
 * Move a damaged MANIFEST.meta aside ("MANIFEST.meta.corrupt.<ts>")
 * so writeManifest can commit a fresh manifest over the directory.
 * @return false with @p err when the rename fails.
 */
bool quarantineManifest(const std::string &dir, std::string *err);

/**
 * Lease bookkeeping for one manifest directory. All operations are
 * keyed by unit name ("shard_3", "r1_s0", ...); the class is
 * stateless beyond its configuration and safe to use from multiple
 * workers on the same directory — that is its purpose.
 */
class ClaimDir
{
  public:
    /** @param leaseTimeoutSecs age beyond which a lease with no done
     *  marker counts as stale (crashed worker). */
    ClaimDir(std::string dir, unsigned leaseTimeoutSecs);

    /** dir/<name> (for unit CSV paths etc.). */
    std::string path(const std::string &name) const;

    /**
     * Try to claim @p unit: take over a stale lease if one is
     * present, then create the lease atomically. @return true when
     * this worker now holds the lease.
     */
    bool tryClaim(const std::string &unit) const;

    /**
     * Bump the lease mtime (call per completed chunk). @return false
     * when the bump failed (logged at warn); kDegradedAfter
     * consecutive failures log a one-time worker-degraded error —
     * the lease is silently aging toward takeover.
     */
    bool heartbeat(const std::string &unit) const;

    /** Consecutive heartbeat failures before the worker counts as
     *  degraded. */
    static constexpr unsigned kDegradedAfter = 3;

    /** heartbeat() has failed kDegradedAfter+ times in a row. */
    bool heartbeatDegraded() const
    {
        return hbFailures_ >= kDegradedAfter;
    }

    /**
     * Give @p unit back: unlink our lease (only when its recorded
     * pid is ours — a takeover may already own the name). The
     * graceful-interrupt path: a released unit is immediately
     * claimable instead of aging out.
     * @return true when the lease was ours and is gone.
     */
    bool release(const std::string &unit) const;

    /** Commit @p unit: create the done marker, drop the lease.
     *  @return false with @p err when the marker cannot be written. */
    bool markDone(const std::string &unit, std::string *err) const;

    bool isDone(const std::string &unit) const;

    /** A lease exists and is younger than the timeout. */
    bool leaseFresh(const std::string &unit) const;

    unsigned leaseTimeoutSecs() const { return timeoutSecs_; }

  private:
    bool takeOverIfStale(const std::string &unit) const;

    std::string dir_;
    unsigned timeoutSecs_;
    /** Consecutive heartbeat failures (one worker per ClaimDir
     *  instance, so plain mutable state is race-free). */
    mutable unsigned hbFailures_ = 0;
};

/** The sweep work-unit name for shard @p i ("shard_<i>"). */
std::string sweepUnitName(unsigned shard);

/** The tune work-unit name for (round, shard) ("r<r>_s<i>"). */
std::string tuneUnitName(std::size_t round, unsigned shard);

/**
 * Atomically publish @p text as @p path: write to a worker-private
 * tmp file, then rename over the target. @return false with @p err
 * on any I/O failure.
 */
bool atomicWriteFile(const std::string &path, const std::string &text,
                     std::string *err);

} // namespace rcache

#endif // RCACHE_RUNNER_CLAIM_HH
