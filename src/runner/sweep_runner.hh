/**
 * @file
 * SweepRunner: parallel execution of independent simulation jobs.
 *
 * The paper's methodology is offline profiling — every (app,
 * organization, strategy, level/param) design point is one complete,
 * self-contained simulated run. A RunJob captures one such point as
 * pure data; executeRunJob() constructs a private workload and System
 * for it, so jobs share no mutable state and the result of a job
 * depends only on the job spec. SweepRunner fans a batch across a
 * work-stealing thread pool and writes each result into the slot of
 * the job that produced it, so the returned vector is in submission
 * order and bit-identical to a serial execution regardless of thread
 * count or completion order.
 */

#ifndef RCACHE_RUNNER_SWEEP_RUNNER_HH
#define RCACHE_RUNNER_SWEEP_RUNNER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/thread_pool.hh"
#include "sim/system.hh"
#include "workload/synthetic.hh"

namespace rcache
{

class TraceEventRecorder;

/** One self-contained design point: everything a run needs. */
struct RunJob
{
    /** Stable label for progress display and reports. */
    std::string label;
    BenchmarkProfile profile;
    SystemConfig cfg;
    /** Instructions per core (every core runs this many). */
    std::uint64_t insts = 0;
    ResizeSetup il1;
    ResizeSetup dl1;
    /** Engine selection; full detail by default (sim/engine.hh). */
    EngineSpec engine;
    /**
     * Multi-core workload mix, cycled across cfg.cores cores; empty
     * runs `profile` on every core. Ignored when cfg.cores == 1 (the
     * single-core path depends only on `profile`).
     */
    std::vector<BenchmarkProfile> mixProfiles;

    /**
     * Telemetry request/output for this job, or null (off). The bundle
     * must outlive the job's execution; it is written only by the one
     * worker running the job, so per-job bundles need no locking.
     */
    RunTelemetry *telemetry = nullptr;
    /** Design-point coordinates for runner trace spans ("k=v ..."). */
    std::string tracePoint;
};

/**
 * Run @p job on a fresh System (cfg.cores == 1, the exact single-core
 * semantics), MultiCoreSystem (cfg.cores > 1, returning the aggregate
 * result), or — for job.engine == analytic — a fresh single-job
 * AnalyticPass (src/analytic/analytic_engine.hh; sweeps share one
 * pass across jobs instead of coming through here). Pure function of
 * the job spec every way.
 */
RunResult executeRunJob(const RunJob &job);

/** See file comment. */
class SweepRunner
{
  public:
    /**
     * Called after each job finishes (serialized; any thread).
     * @param done jobs completed so far  @param total batch size
     */
    using ProgressFn = std::function<void(
        std::size_t done, std::size_t total, const RunJob &job)>;

    /**
     * @param num_jobs worker threads; <=1 runs batches inline on the
     *                 calling thread, 0 selects hardware concurrency
     */
    explicit SweepRunner(unsigned num_jobs = 1);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Worker threads this runner executes with (>= 1). */
    unsigned parallelism() const { return parallelism_; }

    void setProgress(ProgressFn fn) { progress_ = std::move(fn); }

    /**
     * Attach a Chrome trace-event recorder: every executed job gets a
     * complete span named by its label, tagged with its tracePoint
     * and recorded on the worker thread that ran it. Null detaches.
     * The recorder must outlive every run() call that sees it.
     */
    void setTrace(TraceEventRecorder *trace) { trace_ = trace; }

    /**
     * Ask a run() in flight (on another thread) to stop early. Jobs
     * not yet started are skipped and keep default-constructed
     * results (insts == 0 marks them unrun); running jobs complete.
     */
    void requestCancel() { cancelled_.store(true); }
    bool cancelRequested() const { return cancelled_.load(); }
    /** Re-arm after a cancelled batch. */
    void resetCancel() { cancelled_.store(false); }

    /**
     * Execute every job and return results in job order. Determinism
     * guarantee: equal input batches yield bit-identical result
     * vectors for any parallelism. Blocks until the batch is done;
     * must not be called from inside this runner's own pool (a job
     * waiting on its own pool's idle state cannot drain).
     */
    std::vector<RunResult> run(const std::vector<RunJob> &jobs) const;

    /** The serial reference path (what run() must reproduce). */
    static std::vector<RunResult>
    runSerial(const std::vector<RunJob> &jobs);

  private:
    void reportProgress(std::size_t done, std::size_t total,
                        const RunJob &job) const;
    RunResult tracedExecute(const RunJob &job) const;

    unsigned parallelism_;
    TraceEventRecorder *trace_ = nullptr;
    /** Built in the constructor when parallelism_ > 1. */
    std::unique_ptr<ThreadPool> pool_;
    mutable std::mutex progressMtx_;
    ProgressFn progress_;
    std::atomic<bool> cancelled_{false};
};

} // namespace rcache

#endif // RCACHE_RUNNER_SWEEP_RUNNER_HH
