/**
 * @file
 * Deterministic sweep sharding: "--shard i/N" splits a sweep's cell
 * indices across N independent invocations by modulo partitioning.
 *
 * Shard i of N owns every cell whose index is congruent to i mod N,
 * so the N shards partition the sweep exactly: each cell belongs to
 * one and only one shard, for any N. Because every cell's result is
 * a pure function of its spec, re-interleaving the shards' output
 * rows by cell index reproduces an unsharded run byte-for-byte
 * (pinned by tests/scenario/scenario_sweep_test.cc).
 */

#ifndef RCACHE_RUNNER_SHARD_HH
#define RCACHE_RUNNER_SHARD_HH

#include <cstddef>
#include <optional>
#include <string>

namespace rcache
{

/** One shard of a modulo-partitioned sweep. */
struct ShardSpec
{
    /** This shard's index, in [0, count). */
    std::size_t index = 0;
    /** Total number of shards (>= 1). 1 means unsharded. */
    std::size_t count = 1;

    /** Whether this shard runs cell @p cell. */
    bool owns(std::size_t cell) const
    {
        return cell % count == index;
    }

    bool sharded() const { return count > 1; }

    /** Canonical "i/N" form. */
    std::string str() const
    {
        return std::to_string(index) + "/" + std::to_string(count);
    }

    /**
     * Parse "i/N" with 0 <= i < N. On failure returns nullopt and
     * fills @p err with a one-line explanation.
     */
    static std::optional<ShardSpec> parse(const std::string &text,
                                          std::string *err);

    bool operator==(const ShardSpec &o) const = default;
};

} // namespace rcache

#endif // RCACHE_RUNNER_SHARD_HH
