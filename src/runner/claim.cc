#include "runner/claim.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/failpoint.hh"
#include "util/checked_io.hh"
#include "util/logging.hh"
#include "util/numformat.hh"

namespace rcache
{

namespace
{

constexpr const char *metaName = "MANIFEST.meta";
constexpr const char *scnName = "MANIFEST.scn";

std::string
join(const std::string &dir, const std::string &name)
{
    return dir + "/" + name;
}

bool
writeWholeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    os.flush();
    return static_cast<bool>(os);
}

std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Seconds since the epoch of @p path's mtime; nullopt when the file
 *  is gone (claimed state changes race benignly with stat). */
std::optional<std::time_t>
mtimeOf(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return std::nullopt;
    return st.st_mtime;
}

} // namespace

bool
writeManifest(const std::string &dir, const ManifestInfo &info,
              std::string *err)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (err)
            *err = "cannot create manifest directory '" + dir +
                   "': " + ec.message();
        return false;
    }
    // The scenario text is written (atomically — a losing creator
    // re-publishes it after the winner's commit, and readers must
    // never catch a truncated window) before the meta file, whose
    // O_EXCL create is the commit point: a manifest without meta is
    // "still being created", one with it is immutable. Exactly one
    // concurrent creator wins the create.
    if (!atomicWriteFile(join(dir, scnName), info.scenarioText, err))
        return false;
    if (RC_FAILPOINT("claim.manifest.scn.after") !=
        fault::Fire::None) {
        if (err)
            *err = "cannot create '" + join(dir, metaName) +
                   "': injected io_error";
        return false;
    }
    const int fd = ::open(join(dir, metaName).c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        if (err)
            *err = errno == EEXIST
                       ? "manifest already exists in '" + dir + "'"
                       : "cannot create '" + join(dir, metaName) +
                             "': " + std::strerror(errno);
        return false;
    }
    std::ostringstream meta;
    meta << "mode = " << info.mode << "\nshards = " << info.shards
         << "\n";
    const std::string text = meta.str();
    const fault::Fire meta_fire =
        RC_FAILPOINT("claim.manifest.meta.write");
    if (meta_fire == fault::Fire::Torn) {
        (void)!::write(fd, text.data(), text.size() / 2);
        ::close(fd);
        fault::failpointCrash("claim.manifest.meta.write",
                              "torn write");
    }
    const bool ok =
        meta_fire == fault::Fire::None &&
        ::write(fd, text.data(), text.size()) ==
            static_cast<ssize_t>(text.size());
    ::close(fd);
    if (!ok && err)
        *err = "cannot write '" + join(dir, metaName) + "'";
    return ok;
}

std::optional<ManifestInfo>
readManifest(const std::string &dir, std::string *err, bool *corrupt)
{
    if (corrupt)
        *corrupt = false;
    const auto failWith = [&](const std::string &why) {
        if (err)
            *err = why;
        return std::nullopt;
    };
    // Damaged (as opposed to absent) manifests are flagged so the
    // caller can quarantine + re-create instead of dying.
    const auto corruptWith = [&](const std::string &why) {
        if (corrupt)
            *corrupt = true;
        return failWith(why);
    };
    const auto meta = readWholeFile(join(dir, metaName));
    if (!meta)
        return failWith("no manifest in '" + dir + "' (create one "
                        "with --claim DIR --scenario FILE --shards N)");
    ManifestInfo info;
    info.shards = 0;
    std::istringstream is(*meta);
    std::string line;
    while (std::getline(is, line)) {
        const std::size_t eq = line.find(" = ");
        if (eq == std::string::npos)
            return corruptWith("malformed line in '" +
                               join(dir, metaName) + "': " + line);
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 3);
        if (key == "mode") {
            if (value != "sweep" && value != "tune")
                return corruptWith("unknown manifest mode '" +
                                   value + "'");
            info.mode = value;
        } else if (key == "shards") {
            unsigned long long v = 0;
            if (!parseU64Strict(value, v) || v == 0 || v > 4096)
                return corruptWith("manifest shards wants 1..4096, "
                                   "got '" + value + "'");
            info.shards = static_cast<unsigned>(v);
        } else {
            return corruptWith("unknown manifest key '" + key + "'");
        }
    }
    if (info.shards == 0)
        return corruptWith("manifest in '" + dir +
                           "' is missing a shard count");
    const auto scn = readWholeFile(join(dir, scnName));
    if (!scn)
        return corruptWith("manifest in '" + dir + "' has no '" +
                           scnName + "'");
    info.scenarioText = *scn;
    return info;
}

bool
quarantineManifest(const std::string &dir, std::string *err)
{
    const std::string meta = join(dir, metaName);
    const auto aside = quarantineCorruptFile(meta);
    if (!aside) {
        if (err)
            *err = "cannot move damaged '" + meta + "' aside";
        return false;
    }
    RC_LOG(warn, "damaged manifest '" + meta +
                     "' moved aside to '" + *aside + "'");
    return true;
}

ClaimDir::ClaimDir(std::string dir, unsigned lease_timeout_secs)
    : dir_(std::move(dir)), timeoutSecs_(lease_timeout_secs)
{
}

std::string
ClaimDir::path(const std::string &name) const
{
    return join(dir_, name);
}

bool
ClaimDir::takeOverIfStale(const std::string &unit) const
{
    const std::string lease = path(unit + ".lease");
    const auto mtime = mtimeOf(lease);
    if (!mtime)
        return false; // no lease to steal
    if (std::time(nullptr) - *mtime <=
        static_cast<std::time_t>(timeoutSecs_))
        return false; // fresh: its worker is alive
    // Exactly one contender's rename succeeds; the stale lease is
    // moved aside (kept for post-mortems) rather than unlinked so
    // the losers fail cleanly with ENOENT.
    const std::string aside = lease + ".stale." +
                              std::to_string(::getpid()) + "." +
                              std::to_string(*mtime);
    if (::rename(lease.c_str(), aside.c_str()) != 0) {
        // ENOENT: a rival's takeover won the race — business as
        // usual. Anything else is a sick filesystem worth a note.
        if (errno != ENOENT)
            RC_LOG(warn, "cannot move stale lease '" + lease +
                             "' aside: " + std::strerror(errno));
        return false;
    }
    (void)RC_FAILPOINT("claim.takeover.aside");
    return true;
}

bool
ClaimDir::tryClaim(const std::string &unit) const
{
    if (isDone(unit))
        return false;
    takeOverIfStale(unit);
    const std::string lease = path(unit + ".lease");
    const int fd =
        ::open(lease.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false; // someone else holds it (or I/O trouble)
    const std::string text = std::to_string(::getpid()) + "\n";
    // Best-effort content; the lease's existence is what matters.
    (void)!::write(fd, text.data(), text.size());
    ::close(fd);
    (void)RC_FAILPOINT("claim.lease.after_create");
    return true;
}

bool
ClaimDir::heartbeat(const std::string &unit) const
{
    const std::string lease = path(unit + ".lease");
    const bool injected =
        RC_FAILPOINT("claim.heartbeat") != fault::Fire::None;
    // A null times pointer sets both timestamps to now.
    if (injected ||
        ::utimensat(AT_FDCWD, lease.c_str(), nullptr, 0) != 0) {
        ++hbFailures_;
        RC_LOG(warn,
               "heartbeat failed for '" + lease + "' (" +
                   (injected ? "injected io_error"
                             : std::strerror(errno)) +
                   "); lease is aging toward takeover");
        if (hbFailures_ == kDegradedAfter)
            RC_LOG(error,
                   "worker degraded: " +
                       std::to_string(hbFailures_) +
                       " consecutive heartbeat failures on '" +
                       lease +
                       "' — another worker may steal this unit");
        return false;
    }
    hbFailures_ = 0;
    return true;
}

bool
ClaimDir::release(const std::string &unit) const
{
    const std::string lease = path(unit + ".lease");
    const auto content = readWholeFile(lease);
    if (!content ||
        *content != std::to_string(::getpid()) + "\n")
        return false; // not ours (takeover happened, or gone)
    return ::unlink(lease.c_str()) == 0;
}

bool
ClaimDir::markDone(const std::string &unit, std::string *err) const
{
    if (RC_FAILPOINT("claim.done.before") != fault::Fire::None) {
        if (err)
            *err = "cannot write '" + path(unit + ".done") +
                   "': injected io_error";
        return false;
    }
    if (!writeWholeFile(path(unit + ".done"), "ok\n")) {
        if (err)
            *err = "cannot write '" + path(unit + ".done") + "'";
        return false;
    }
    if (::unlink(path(unit + ".lease").c_str()) != 0 &&
        errno != ENOENT)
        RC_LOG(warn, "cannot drop lease '" + path(unit + ".lease") +
                         "': " + std::strerror(errno));
    return true;
}

bool
ClaimDir::isDone(const std::string &unit) const
{
    return std::filesystem::exists(path(unit + ".done"));
}

bool
ClaimDir::leaseFresh(const std::string &unit) const
{
    const auto mtime = mtimeOf(path(unit + ".lease"));
    return mtime && std::time(nullptr) - *mtime <=
                        static_cast<std::time_t>(timeoutSecs_);
}

std::string
sweepUnitName(unsigned shard)
{
    return "shard_" + std::to_string(shard);
}

std::string
tuneUnitName(std::size_t round, unsigned shard)
{
    return "r" + std::to_string(round) + "_s" +
           std::to_string(shard);
}

bool
atomicWriteFile(const std::string &path, const std::string &text,
                std::string *err)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    if (!writeWholeFile(tmp, text)) {
        if (err)
            *err = "cannot write '" + tmp + "'";
        return false;
    }
    if (RC_FAILPOINT("atomic.publish") != fault::Fire::None) {
        if (err)
            *err = "cannot publish '" + path +
                   "': injected io_error";
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = "cannot publish '" + path +
                   "': " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace rcache
