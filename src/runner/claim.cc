#include "runner/claim.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/numformat.hh"

namespace rcache
{

namespace
{

constexpr const char *metaName = "MANIFEST.meta";
constexpr const char *scnName = "MANIFEST.scn";

std::string
join(const std::string &dir, const std::string &name)
{
    return dir + "/" + name;
}

bool
writeWholeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    os.flush();
    return static_cast<bool>(os);
}

std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Seconds since the epoch of @p path's mtime; nullopt when the file
 *  is gone (claimed state changes race benignly with stat). */
std::optional<std::time_t>
mtimeOf(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return std::nullopt;
    return st.st_mtime;
}

} // namespace

bool
writeManifest(const std::string &dir, const ManifestInfo &info,
              std::string *err)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (err)
            *err = "cannot create manifest directory '" + dir +
                   "': " + ec.message();
        return false;
    }
    // The scenario text is written (atomically — a losing creator
    // re-publishes it after the winner's commit, and readers must
    // never catch a truncated window) before the meta file, whose
    // O_EXCL create is the commit point: a manifest without meta is
    // "still being created", one with it is immutable. Exactly one
    // concurrent creator wins the create.
    if (!atomicWriteFile(join(dir, scnName), info.scenarioText, err))
        return false;
    const int fd = ::open(join(dir, metaName).c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        if (err)
            *err = errno == EEXIST
                       ? "manifest already exists in '" + dir + "'"
                       : "cannot create '" + join(dir, metaName) +
                             "': " + std::strerror(errno);
        return false;
    }
    std::ostringstream meta;
    meta << "mode = " << info.mode << "\nshards = " << info.shards
         << "\n";
    const std::string text = meta.str();
    const bool ok =
        ::write(fd, text.data(), text.size()) ==
        static_cast<ssize_t>(text.size());
    ::close(fd);
    if (!ok && err)
        *err = "cannot write '" + join(dir, metaName) + "'";
    return ok;
}

std::optional<ManifestInfo>
readManifest(const std::string &dir, std::string *err)
{
    const auto failWith = [&](const std::string &why) {
        if (err)
            *err = why;
        return std::nullopt;
    };
    const auto meta = readWholeFile(join(dir, metaName));
    if (!meta)
        return failWith("no manifest in '" + dir + "' (create one "
                        "with --claim DIR --scenario FILE --shards N)");
    ManifestInfo info;
    info.shards = 0;
    std::istringstream is(*meta);
    std::string line;
    while (std::getline(is, line)) {
        const std::size_t eq = line.find(" = ");
        if (eq == std::string::npos)
            return failWith("malformed line in '" +
                            join(dir, metaName) + "': " + line);
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 3);
        if (key == "mode") {
            if (value != "sweep" && value != "tune")
                return failWith("unknown manifest mode '" + value +
                                "'");
            info.mode = value;
        } else if (key == "shards") {
            unsigned long long v = 0;
            if (!parseU64Strict(value, v) || v == 0 || v > 4096)
                return failWith("manifest shards wants 1..4096, "
                                "got '" + value + "'");
            info.shards = static_cast<unsigned>(v);
        } else {
            return failWith("unknown manifest key '" + key + "'");
        }
    }
    if (info.shards == 0)
        return failWith("manifest in '" + dir +
                        "' is missing a shard count");
    const auto scn = readWholeFile(join(dir, scnName));
    if (!scn)
        return failWith("manifest in '" + dir + "' has no '" +
                        scnName + "'");
    info.scenarioText = *scn;
    return info;
}

ClaimDir::ClaimDir(std::string dir, unsigned lease_timeout_secs)
    : dir_(std::move(dir)), timeoutSecs_(lease_timeout_secs)
{
}

std::string
ClaimDir::path(const std::string &name) const
{
    return join(dir_, name);
}

bool
ClaimDir::takeOverIfStale(const std::string &unit) const
{
    const std::string lease = path(unit + ".lease");
    const auto mtime = mtimeOf(lease);
    if (!mtime)
        return false; // no lease to steal
    if (std::time(nullptr) - *mtime <=
        static_cast<std::time_t>(timeoutSecs_))
        return false; // fresh: its worker is alive
    // Exactly one contender's rename succeeds; the stale lease is
    // moved aside (kept for post-mortems) rather than unlinked so
    // the losers fail cleanly with ENOENT.
    const std::string aside = lease + ".stale." +
                              std::to_string(::getpid()) + "." +
                              std::to_string(*mtime);
    return ::rename(lease.c_str(), aside.c_str()) == 0;
}

bool
ClaimDir::tryClaim(const std::string &unit) const
{
    if (isDone(unit))
        return false;
    takeOverIfStale(unit);
    const std::string lease = path(unit + ".lease");
    const int fd =
        ::open(lease.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false; // someone else holds it (or I/O trouble)
    const std::string text = std::to_string(::getpid()) + "\n";
    // Best-effort content; the lease's existence is what matters.
    (void)!::write(fd, text.data(), text.size());
    ::close(fd);
    return true;
}

void
ClaimDir::heartbeat(const std::string &unit) const
{
    // A null times pointer sets both timestamps to now.
    ::utimensat(AT_FDCWD, path(unit + ".lease").c_str(), nullptr, 0);
}

bool
ClaimDir::markDone(const std::string &unit, std::string *err) const
{
    if (!writeWholeFile(path(unit + ".done"), "ok\n")) {
        if (err)
            *err = "cannot write '" + path(unit + ".done") + "'";
        return false;
    }
    ::unlink(path(unit + ".lease").c_str());
    return true;
}

bool
ClaimDir::isDone(const std::string &unit) const
{
    return std::filesystem::exists(path(unit + ".done"));
}

bool
ClaimDir::leaseFresh(const std::string &unit) const
{
    const auto mtime = mtimeOf(path(unit + ".lease"));
    return mtime && std::time(nullptr) - *mtime <=
                        static_cast<std::time_t>(timeoutSecs_);
}

std::string
sweepUnitName(unsigned shard)
{
    return "shard_" + std::to_string(shard);
}

std::string
tuneUnitName(std::size_t round, unsigned shard)
{
    return "r" + std::to_string(round) + "_s" +
           std::to_string(shard);
}

bool
atomicWriteFile(const std::string &path, const std::string &text,
                std::string *err)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    if (!writeWholeFile(tmp, text)) {
        if (err)
            *err = "cannot write '" + tmp + "'";
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = "cannot publish '" + path +
                   "': " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace rcache
